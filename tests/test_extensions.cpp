// Tests for the toolkit extensions: resume-from-journal (full-failure
// restart, paper §II-B-4) and the multi-pilot RTS (heterogeneous resource
// interleaving, paper §II-D / §III-A).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>

#include "src/core/app_manager.hpp"
#include "src/rts/multi_pilot_rts.hpp"

namespace entk {
namespace {

std::string fresh_dir() {
  const std::string dir = ::testing::TempDir() + "/entk_ext_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(wall_now_us());
  std::filesystem::create_directories(dir);
  return dir;
}

AppManagerConfig fast_config() {
  AppManagerConfig cfg;
  cfg.resource.resource = "local.localhost";
  cfg.resource.cpus = 16;
  cfg.resource.agent.env_setup_s = 0.1;
  cfg.resource.agent.dispatch_rate_per_s = 1000;
  cfg.resource.rts_teardown_base_s = 0.01;
  cfg.resource.rts_teardown_per_unit_s = 0.0;
  cfg.clock_scale = 1e-4;
  return cfg;
}

// ------------------------------------------------------------ resume ----

TEST(Resume, SecondAttemptSkipsCompletedTasks) {
  const std::string dir = fresh_dir();

  // The application: stage with one always-good and one initially-broken
  // task, followed by a second stage that can only run once both pass.
  auto broken = std::make_shared<std::atomic<bool>>(true);
  auto good_runs = std::make_shared<std::atomic<int>>(0);
  auto bad_runs = std::make_shared<std::atomic<int>>(0);
  auto final_runs = std::make_shared<std::atomic<int>>(0);

  auto pipeline = std::make_shared<Pipeline>("p");
  auto s1 = std::make_shared<Stage>("s1");
  auto good = std::make_shared<Task>("good");
  good->duration_s = 0.2;
  good->function = [good_runs] {
    ++*good_runs;
    return 0;
  };
  s1->add_task(good);
  auto bad = std::make_shared<Task>("bad");
  bad->duration_s = 0.2;
  bad->function = [broken, bad_runs] {
    ++*bad_runs;
    return broken->load() ? 1 : 0;
  };
  s1->add_task(bad);
  pipeline->add_stage(s1);
  auto s2 = std::make_shared<Stage>("s2");
  auto fin = std::make_shared<Task>("final");
  fin->duration_s = 0.2;
  fin->function = [final_runs] {
    ++*final_runs;
    return 0;
  };
  s2->add_task(fin);
  pipeline->add_stage(s2);

  std::string first_journal;
  {
    // Attempt 1: the bad task fails permanently; the pipeline fails.
    AppManagerConfig cfg = fast_config();
    cfg.journal_dir = dir;
    AppManager amgr(cfg);
    amgr.add_pipelines({pipeline});
    amgr.run();
    EXPECT_EQ(pipeline->state(), PipelineState::Failed);
    EXPECT_EQ(amgr.tasks_done(), 1u);
    EXPECT_EQ(amgr.tasks_failed(), 1u);
    first_journal = amgr.state_store()->journal_path();
  }

  // "Fix the environment" and resubmit the same description.
  *broken = false;
  pipeline->reset_for_resume();
  {
    AppManagerConfig cfg = fast_config();
    cfg.resume_journal = first_journal;
    AppManager amgr(cfg);
    amgr.add_pipelines({pipeline});
    amgr.run();
    EXPECT_EQ(pipeline->state(), PipelineState::Done);
    EXPECT_EQ(amgr.tasks_recovered(), 1u);  // "good" not re-executed
    EXPECT_EQ(amgr.tasks_done(), 2u);       // "bad" + "final"
  }
  EXPECT_EQ(good_runs->load(), 1);  // ran only in attempt 1
  EXPECT_EQ(bad_runs->load(), 2);   // failed once, then succeeded
  EXPECT_EQ(final_runs->load(), 1);
}

TEST(Resume, FullyCompletedStageIsSkippedEntirely) {
  const std::string dir = fresh_dir();
  auto stage1_runs = std::make_shared<std::atomic<int>>(0);
  auto pipeline = std::make_shared<Pipeline>("p");
  auto s1 = std::make_shared<Stage>("s1");
  for (int i = 0; i < 3; ++i) {
    auto t = std::make_shared<Task>("t" + std::to_string(i));
    t->duration_s = 0.2;
    t->function = [stage1_runs] {
      ++*stage1_runs;
      return 0;
    };
    s1->add_task(t);
  }
  pipeline->add_stage(s1);

  std::string journal;
  {
    AppManagerConfig cfg = fast_config();
    cfg.journal_dir = dir;
    AppManager amgr(cfg);
    amgr.add_pipelines({pipeline});
    amgr.run();
    EXPECT_EQ(amgr.tasks_done(), 3u);
    journal = amgr.state_store()->journal_path();
  }

  pipeline->reset_for_resume();
  {
    AppManagerConfig cfg = fast_config();
    cfg.resume_journal = journal;
    AppManager amgr(cfg);
    amgr.add_pipelines({pipeline});
    amgr.run();
    EXPECT_EQ(amgr.tasks_recovered(), 3u);
    EXPECT_EQ(amgr.tasks_done(), 0u);
    EXPECT_EQ(pipeline->state(), PipelineState::Done);
  }
  EXPECT_EQ(stage1_runs->load(), 3);  // nothing re-ran
}

TEST(Resume, CombinedBrokerAndStateRecoveryDoesNotReexecuteDoneTasks) {
  // Combined crash recovery: a resumed run replays BOTH journals — the
  // state journal (resume_journal) that marks tasks DONE, and a crashed
  // broker's journal (recover_broker_journal) that still holds one of
  // those DONE tasks published-but-unacked in q.pending. The recovered
  // backlog must be purged (the WFProcessor is the scheduling authority),
  // so the DONE task is neither re-published nor re-executed.
  const std::string dir = fresh_dir();
  auto first_runs = std::make_shared<std::atomic<int>>(0);
  auto second_runs = std::make_shared<std::atomic<int>>(0);
  auto pipeline = std::make_shared<Pipeline>("p");
  auto s1 = std::make_shared<Stage>("s1");
  auto first = std::make_shared<Task>("first");
  first->duration_s = 0.2;
  first->function = [first_runs] {
    ++*first_runs;
    return 0;
  };
  s1->add_task(first);
  pipeline->add_stage(s1);
  auto s2 = std::make_shared<Stage>("s2");
  auto second = std::make_shared<Task>("second");
  second->duration_s = 0.2;
  second->function = [second_runs] {
    ++*second_runs;
    return 0;
  };
  s2->add_task(second);
  pipeline->add_stage(s2);

  // Attempt 1: durable, completes fully.
  std::string state_journal;
  {
    AppManagerConfig cfg = fast_config();
    cfg.journal_dir = dir;
    AppManager amgr(cfg);
    amgr.add_pipelines({pipeline});
    amgr.run();
    ASSERT_EQ(amgr.tasks_done(), 2u);
    state_journal = amgr.state_store()->journal_path();
    EXPECT_TRUE(std::filesystem::exists(amgr.broker_journal_path()));
  }

  // A crashed broker's journal: the DONE task's dispatch message sits in
  // q.pending, published but never acked (the crash hit before the
  // ExecManager consumed it).
  const std::string crash_dir = fresh_dir();
  std::string crashed_journal;
  {
    mq::Broker crashed("crashed", crash_dir);
    crashed.declare_queue("q.pending", mq::QueueOptions{.durable = true});
    json::Value msg;
    msg["uid"] = first->uid();
    crashed.publish("q.pending", mq::Message::json_body("q.pending", msg));
    crashed_journal = crashed.journal_path();
    crashed.close();
  }

  pipeline->reset_for_resume();
  {
    AppManagerConfig cfg = fast_config();
    cfg.resume_journal = state_journal;
    cfg.recover_broker_journal = crashed_journal;
    AppManager amgr(cfg);
    amgr.add_pipelines({pipeline});
    amgr.run();
    EXPECT_EQ(amgr.tasks_recovered(), 2u);
    EXPECT_EQ(amgr.tasks_done(), 0u);
    EXPECT_EQ(pipeline->state(), PipelineState::Done);
    EXPECT_TRUE(amgr.overheads().failed_component.empty());
  }
  // The replayed q.pending backlog was purged: the recovered-DONE task did
  // not run again.
  EXPECT_EQ(first_runs->load(), 1);
  EXPECT_EQ(second_runs->load(), 1);
}

TEST(Resume, ResetForResumeRestoresDescribedStates) {
  auto pipeline = std::make_shared<Pipeline>("p");
  auto stage = std::make_shared<Stage>("s");
  auto task = std::make_shared<Task>("t");
  task->duration_s = 1;
  stage->add_task(task);
  pipeline->add_stage(stage);
  pipeline->set_state(PipelineState::Failed);
  stage->set_state(StageState::Failed);
  task->set_state(TaskState::Failed);
  pipeline->advance();
  pipeline->reset_for_resume();
  EXPECT_EQ(pipeline->state(), PipelineState::Described);
  EXPECT_EQ(stage->state(), StageState::Described);
  EXPECT_EQ(task->state(), TaskState::Described);
  EXPECT_EQ(pipeline->current_stage(), stage);
}

// -------------------------------------------------------- multi-pilot ---

class MultiSink {
 public:
  void operator()(const rts::UnitResult& r) {
    std::lock_guard<std::mutex> lock(mutex_);
    results_.push_back(r);
    cv_.notify_all();
  }
  bool wait_for(std::size_t n, double timeout_s = 10.0) {
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                        [&] { return results_.size() >= n; });
  }
  std::vector<rts::UnitResult> results() {
    std::lock_guard<std::mutex> lock(mutex_);
    return results_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<rts::UnitResult> results_;
};

rts::PilotRtsConfig pilot_config(const std::string& ci, int nodes) {
  rts::PilotRtsConfig cfg;
  cfg.pilot.resource = ci;
  cfg.pilot.nodes = nodes;
  cfg.agent.env_setup_s = 0.05;
  cfg.agent.dispatch_rate_per_s = 1000;
  cfg.teardown_base_s = 0.01;
  cfg.teardown_per_unit_s = 0.0;
  return cfg;
}

rts::MultiPilotRtsConfig two_pilot_config() {
  // A "leadership" pilot (64 Titan nodes = 1024 cores) plus a small
  // "cluster" pilot (2 Comet nodes = 48 cores) — the paper's §III-A
  // simulation/analysis split.
  rts::MultiPilotRtsConfig cfg;
  cfg.pilots.push_back(pilot_config("ornl.titan", 64));
  cfg.pilots.push_back(pilot_config("xsede.comet", 2));
  return cfg;
}

TEST(MultiPilot, RequiresAtLeastOnePilot) {
  EXPECT_THROW(rts::MultiPilotRts(rts::MultiPilotRtsConfig{},
                                  std::make_shared<ScaledClock>(1e-4),
                                  std::make_shared<Profiler>()),
               ValueError);
}

TEST(MultiPilot, RoutesByCapacityAndLoad) {
  auto clock = std::make_shared<ScaledClock>(1e-4);
  rts::MultiPilotRts rts(two_pilot_config(), clock,
                         std::make_shared<Profiler>());
  MultiSink sink;
  rts.set_completion_callback([&sink](const rts::UnitResult& r) { sink(r); });
  rts.initialize();
  ASSERT_EQ(rts.pilot_count(), 2u);

  // A 512-core unit only fits the Titan pilot. Long-running (10,000
  // virtual s ~ 1 s wall at 1e-4) so it still occupies cores while the
  // routing assertions below execute.
  rts::TaskUnit big;
  big.uid = "big";
  big.cores = 512;
  big.duration_s = 10000.0;
  EXPECT_EQ(rts.route(big), 0);

  // A 1-core unit goes to the pilot with more free cores (Titan, idle).
  rts::TaskUnit small;
  small.uid = "small";
  small.cores = 1;
  small.duration_s = 1.0;
  EXPECT_EQ(rts.route(small), 0);

  // Occupy most of Titan: the small unit now routes to Comet.
  rts.submit({big});
  rts::TaskUnit big2 = big;
  big2.uid = "big2";
  big2.cores = 480;
  rts.submit({big2});
  for (int spin = 0; spin < 500 && rts.route(small) != 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Titan now has 1024-992=32 free cores < Comet's 48: small goes there.
  EXPECT_EQ(rts.route(small), 1);

  rts.submit({small});
  ASSERT_TRUE(sink.wait_for(3));
  for (const rts::UnitResult& r : sink.results()) {
    EXPECT_EQ(r.outcome, rts::UnitOutcome::Done);
  }
  rts.terminate();
}

TEST(MultiPilot, ImpossibleUnitFailsThroughWidestPilot) {
  auto clock = std::make_shared<ScaledClock>(1e-4);
  rts::MultiPilotRts rts(two_pilot_config(), clock,
                         std::make_shared<Profiler>());
  MultiSink sink;
  rts.set_completion_callback([&sink](const rts::UnitResult& r) { sink(r); });
  rts.initialize();
  rts::TaskUnit huge;
  huge.uid = "huge";
  huge.cores = 1 << 20;
  huge.duration_s = 1.0;
  EXPECT_EQ(rts.route(huge), -1);
  rts.submit({huge});
  ASSERT_TRUE(sink.wait_for(1));
  EXPECT_EQ(sink.results()[0].outcome, rts::UnitOutcome::Failed);
  rts.terminate();
}

TEST(MultiPilot, AggregatesStatsAndHealth) {
  auto clock = std::make_shared<ScaledClock>(1e-4);
  rts::MultiPilotRts rts(two_pilot_config(), clock,
                         std::make_shared<Profiler>());
  MultiSink sink;
  rts.set_completion_callback([&sink](const rts::UnitResult& r) { sink(r); });
  rts.initialize();
  EXPECT_TRUE(rts.is_healthy());

  std::vector<rts::TaskUnit> units;
  for (int i = 0; i < 6; ++i) {
    rts::TaskUnit u;
    u.uid = "u" + std::to_string(i);
    u.cores = 1;
    u.duration_s = 0.5;
    units.push_back(std::move(u));
  }
  rts.submit(std::move(units));
  ASSERT_TRUE(sink.wait_for(6));
  const rts::RtsStats s = rts.stats();
  EXPECT_EQ(s.units_submitted, 6u);
  EXPECT_EQ(s.units_completed, 6u);
  EXPECT_EQ(s.units_in_flight, 0u);

  // Killing one member makes the composite unhealthy.
  rts.member(1)->kill();
  EXPECT_FALSE(rts.is_healthy());
  rts.kill();
}

TEST(MultiPilot, DrivesWholeAppThroughAppManager) {
  // The composite RTS drops in behind EnTK unchanged (black-box claim):
  // a workflow mixing 256-core "simulation" tasks and 1-core "analysis"
  // tasks lands on the right pilots and completes.
  AppManagerConfig cfg = fast_config();
  auto clock = std::make_shared<ScaledClock>(1e-4);
  auto profiler = std::make_shared<Profiler>();
  cfg.rts_factory = [clock, profiler]() -> rts::RtsPtr {
    return std::make_shared<rts::MultiPilotRts>(two_pilot_config(), clock,
                                                profiler);
  };
  AppManager amgr(cfg);
  auto pipeline = std::make_shared<Pipeline>("mixed");
  auto simulate = std::make_shared<Stage>("simulate");
  for (int i = 0; i < 3; ++i) {
    auto t = std::make_shared<Task>("sim" + std::to_string(i));
    t->cpu_reqs.processes = 256;
    t->duration_s = 2.0;
    simulate->add_task(t);
  }
  pipeline->add_stage(simulate);
  auto analyze = std::make_shared<Stage>("analyze");
  for (int i = 0; i < 4; ++i) {
    auto t = std::make_shared<Task>("ana" + std::to_string(i));
    t->duration_s = 1.0;
    analyze->add_task(t);
  }
  pipeline->add_stage(analyze);
  amgr.add_pipelines({pipeline});
  amgr.run();
  EXPECT_EQ(amgr.tasks_done(), 7u);
  EXPECT_EQ(pipeline->state(), PipelineState::Done);
}

}  // namespace
}  // namespace entk

namespace entk {
namespace {

// ------------------------------------------------------- cancellation ---

TEST(Cancellation, CancelMovesLiveObjectsToCanceled) {
  AppManagerConfig cfg = fast_config();
  AppManager* handle = nullptr;
  std::mutex handle_mutex;

  auto pipeline = std::make_shared<Pipeline>("long");
  auto stage = std::make_shared<Stage>("s");
  for (int i = 0; i < 4; ++i) {
    auto t = std::make_shared<Task>("t" + std::to_string(i));
    t->duration_s = 5000.0;  // 0.5 s wall at 1e-4: plenty to cancel into
    stage->add_task(t);
  }
  pipeline->add_stage(stage);
  auto never_stage = std::make_shared<Stage>("never");
  auto never = std::make_shared<std::atomic<bool>>(false);
  auto nt = std::make_shared<Task>("never");
  nt->duration_s = 1.0;
  nt->function = [never] {
    *never = true;
    return 0;
  };
  never_stage->add_task(nt);
  pipeline->add_stage(never_stage);

  AppManager amgr(cfg);
  {
    std::lock_guard<std::mutex> lock(handle_mutex);
    handle = &amgr;
  }
  amgr.add_pipelines({pipeline});
  std::thread canceler([&handle, &handle_mutex] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    std::lock_guard<std::mutex> lock(handle_mutex);
    if (handle) handle->cancel();
  });
  amgr.run();  // returns promptly instead of waiting ~0.5 s per task chain
  canceler.join();

  EXPECT_EQ(pipeline->state(), PipelineState::Canceled);
  // Clean termination cancels stages that never started, too.
  EXPECT_EQ(never_stage->state(), StageState::Canceled);
  EXPECT_FALSE(never->load());
  EXPECT_EQ(amgr.tasks_done(), 0u);
  int canceled_tasks = 0;
  for (const TaskPtr& t : stage->tasks()) {
    if (t->state() == TaskState::Canceled) ++canceled_tasks;
  }
  EXPECT_EQ(canceled_tasks, 4);
}

TEST(Cancellation, CancelBeforeAnythingRanCancelsEverything) {
  AppManagerConfig cfg = fast_config();
  auto pipeline = std::make_shared<Pipeline>("p");
  auto stage = std::make_shared<Stage>("s");
  auto t = std::make_shared<Task>("t");
  t->duration_s = 10000.0;
  stage->add_task(t);
  pipeline->add_stage(stage);
  AppManager amgr(cfg);
  amgr.add_pipelines({pipeline});
  std::thread canceler([&amgr] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    amgr.cancel();
  });
  amgr.run();
  canceler.join();
  EXPECT_EQ(pipeline->state(), PipelineState::Canceled);
  EXPECT_TRUE(t->state() == TaskState::Canceled || is_final(t->state()));
}

}  // namespace
}  // namespace entk
