// End-to-end tests of the entk_run CLI: JSON workflow in, execution
// through the full stack, exit code out. The binary paths are injected by
// CMake as ENTK_RUN_BINARY / ENTK_BROKER_BINARY.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "src/common/clock.hpp"

#ifndef ENTK_RUN_BINARY
#define ENTK_RUN_BINARY "entk_run"
#endif
#ifndef ENTK_BROKER_BINARY
#define ENTK_BROKER_BINARY "entk_broker"
#endif

namespace {

std::string write_workflow(const std::string& body) {
  const std::string path = ::testing::TempDir() + "/wf_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(entk::wall_now_us()) + ".json";
  std::ofstream out(path);
  out << body;
  return path;
}

int run_tool(const std::string& args) {
  const std::string cmd =
      std::string(ENTK_RUN_BINARY) + " " + args + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(EntkRun, ExecutesSimulatedWorkflow) {
  const std::string path = write_workflow(R"({
    "resource": {"resource": "local.localhost", "cpus": 8,
                 "clock_scale": 0.0001},
    "pipelines": [
      {"name": "p", "stages": [
        {"name": "s", "tasks": [
          {"name": "a", "executable": "sleep", "duration_s": 5},
          {"name": "b", "executable": "sleep", "duration_s": 5}
        ]}
      ]}
    ]
  })");
  EXPECT_EQ(run_tool(path), 0);
}

TEST(EntkRun, RealProcessesRunAndGateLaterStages) {
  const std::string probe = ::testing::TempDir() + "/entk_run_test_probe_" +
                            std::to_string(::getpid());
  std::filesystem::remove(probe);
  const std::string path = write_workflow(R"({
    "resource": {"resource": "local.localhost", "cpus": 2,
                 "local_processes": true},
    "pipelines": [
      {"name": "p", "stages": [
        {"name": "create", "tasks": [
          {"name": "touch", "executable": "/usr/bin/touch",
           "arguments": [")" + probe + R"("]}
        ]},
        {"name": "check", "tasks": [
          {"name": "ls", "executable": "/bin/ls",
           "arguments": [")" + probe + R"("]}
        ]}
      ]}
    ]
  })");
  EXPECT_EQ(run_tool(path), 0);
  EXPECT_TRUE(std::filesystem::exists(probe));
  std::filesystem::remove(probe);
}

TEST(EntkRun, FailingProcessYieldsNonZeroExit) {
  const std::string path = write_workflow(R"({
    "resource": {"resource": "local.localhost", "cpus": 2,
                 "local_processes": true},
    "pipelines": [
      {"name": "p", "stages": [
        {"name": "s", "tasks": [
          {"name": "bad", "executable": "/bin/false"}
        ]}
      ]}
    ]
  })");
  EXPECT_EQ(run_tool(path), 1);
}

TEST(EntkRun, RetriesFlakyProcessesPerConfig) {
  // /bin/false always fails: with retries the tool still exits 1, but the
  // run completes (no hang) after the budget is consumed.
  const std::string path = write_workflow(R"({
    "resource": {"resource": "local.localhost", "cpus": 2,
                 "task_retry_limit": 2, "local_processes": true},
    "pipelines": [
      {"name": "p", "stages": [
        {"name": "s", "tasks": [
          {"name": "bad", "executable": "/bin/false"}
        ]}
      ]}
    ]
  })");
  EXPECT_EQ(run_tool(path), 1);
}

// Forks the entk_broker daemon with its stdout on a pipe; parses the
// "listening on HOST:PORT" line for the ephemeral port.
class BrokerDaemon {
 public:
  BrokerDaemon() {
    int out[2];
    if (::pipe(out) != 0) return;
    pid_ = ::fork();
    if (pid_ == 0) {
      ::dup2(out[1], STDOUT_FILENO);
      ::close(out[0]);
      ::close(out[1]);
      ::execl(ENTK_BROKER_BINARY, "entk_broker", "--port", "0",
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    ::close(out[1]);
    stdout_ = ::fdopen(out[0], "r");
    char line[256] = {0};
    if (stdout_ != nullptr && std::fgets(line, sizeof line, stdout_)) {
      const char* colon = std::strrchr(line, ':');
      if (colon != nullptr) port_ = std::atoi(colon + 1);
    }
  }

  ~BrokerDaemon() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
    }
    if (stdout_ != nullptr) std::fclose(stdout_);
  }

  int port() const { return port_; }

  /// SIGTERM the daemon and return its exit code (-1 on abnormal exit).
  int terminate() {
    if (pid_ <= 0) return -1;
    ::kill(pid_, SIGTERM);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

 private:
  pid_t pid_ = -1;
  std::FILE* stdout_ = nullptr;
  int port_ = 0;
};

TEST(EntkBroker, ServesWorkflowOverTcpAndShutsDownGracefully) {
  BrokerDaemon daemon;
  ASSERT_GT(daemon.port(), 0) << "daemon did not report a listening port";

  const std::string path = write_workflow(R"({
    "resource": {"resource": "local.localhost", "cpus": 8,
                 "clock_scale": 0.0001},
    "pipelines": [
      {"name": "p", "stages": [
        {"name": "s", "tasks": [
          {"name": "a", "executable": "sleep", "duration_s": 5},
          {"name": "b", "executable": "sleep", "duration_s": 5}
        ]}
      ]}
    ]
  })");
  EXPECT_EQ(
      run_tool(path + " --broker 127.0.0.1:" + std::to_string(daemon.port())),
      0);
  EXPECT_EQ(daemon.terminate(), 0);  // graceful drain on SIGTERM
}

TEST(EntkRun, RejectsMissingAndMalformedInput) {
  EXPECT_EQ(run_tool("/nonexistent/wf.json"), 2);
  EXPECT_EQ(run_tool(write_workflow("{not json")), 2);
  EXPECT_EQ(run_tool(""), 2);  // usage
  // Valid JSON but no pipelines key.
  EXPECT_EQ(run_tool(write_workflow("{\"resource\": {}}")), 2);
}

}  // namespace
