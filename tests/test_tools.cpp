// End-to-end tests of the entk_run CLI: JSON workflow in, execution
// through the full stack, exit code out. The binary paths are injected by
// CMake as ENTK_RUN_BINARY / ENTK_BROKER_BINARY.
#include <gtest/gtest.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.hpp"
#include "src/net/remote_broker.hpp"

#ifndef ENTK_RUN_BINARY
#define ENTK_RUN_BINARY "entk_run"
#endif
#ifndef ENTK_BROKER_BINARY
#define ENTK_BROKER_BINARY "entk_broker"
#endif

namespace {

std::string write_workflow(const std::string& body) {
  const std::string path = ::testing::TempDir() + "/wf_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(entk::wall_now_us()) + ".json";
  std::ofstream out(path);
  out << body;
  return path;
}

int run_tool(const std::string& args) {
  const std::string cmd =
      std::string(ENTK_RUN_BINARY) + " " + args + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(EntkRun, ExecutesSimulatedWorkflow) {
  const std::string path = write_workflow(R"({
    "resource": {"resource": "local.localhost", "cpus": 8,
                 "clock_scale": 0.0001},
    "pipelines": [
      {"name": "p", "stages": [
        {"name": "s", "tasks": [
          {"name": "a", "executable": "sleep", "duration_s": 5},
          {"name": "b", "executable": "sleep", "duration_s": 5}
        ]}
      ]}
    ]
  })");
  EXPECT_EQ(run_tool(path), 0);
}

TEST(EntkRun, RealProcessesRunAndGateLaterStages) {
  const std::string probe = ::testing::TempDir() + "/entk_run_test_probe_" +
                            std::to_string(::getpid());
  std::filesystem::remove(probe);
  const std::string path = write_workflow(R"({
    "resource": {"resource": "local.localhost", "cpus": 2,
                 "local_processes": true},
    "pipelines": [
      {"name": "p", "stages": [
        {"name": "create", "tasks": [
          {"name": "touch", "executable": "/usr/bin/touch",
           "arguments": [")" + probe + R"("]}
        ]},
        {"name": "check", "tasks": [
          {"name": "ls", "executable": "/bin/ls",
           "arguments": [")" + probe + R"("]}
        ]}
      ]}
    ]
  })");
  EXPECT_EQ(run_tool(path), 0);
  EXPECT_TRUE(std::filesystem::exists(probe));
  std::filesystem::remove(probe);
}

TEST(EntkRun, FailingProcessYieldsNonZeroExit) {
  const std::string path = write_workflow(R"({
    "resource": {"resource": "local.localhost", "cpus": 2,
                 "local_processes": true},
    "pipelines": [
      {"name": "p", "stages": [
        {"name": "s", "tasks": [
          {"name": "bad", "executable": "/bin/false"}
        ]}
      ]}
    ]
  })");
  EXPECT_EQ(run_tool(path), 1);
}

TEST(EntkRun, RetriesFlakyProcessesPerConfig) {
  // /bin/false always fails: with retries the tool still exits 1, but the
  // run completes (no hang) after the budget is consumed.
  const std::string path = write_workflow(R"({
    "resource": {"resource": "local.localhost", "cpus": 2,
                 "task_retry_limit": 2, "local_processes": true},
    "pipelines": [
      {"name": "p", "stages": [
        {"name": "s", "tasks": [
          {"name": "bad", "executable": "/bin/false"}
        ]}
      ]}
    ]
  })");
  EXPECT_EQ(run_tool(path), 1);
}

// Forks the entk_broker daemon with its stdout on a pipe; parses the
// "listening on HOST:PORT" line for the ephemeral port. Extra flags
// (sharding, journal, recovery) are appended after "--port 0".
class BrokerDaemon {
 public:
  explicit BrokerDaemon(std::vector<std::string> extra_args = {}) {
    int out[2];
    if (::pipe(out) != 0) return;
    pid_ = ::fork();
    if (pid_ == 0) {
      ::dup2(out[1], STDOUT_FILENO);
      ::close(out[0]);
      ::close(out[1]);
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>("entk_broker"));
      argv.push_back(const_cast<char*>("--port"));
      argv.push_back(const_cast<char*>("0"));
      for (auto& arg : extra_args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(ENTK_BROKER_BINARY, argv.data());
      ::_exit(127);
    }
    ::close(out[1]);
    stdout_ = ::fdopen(out[0], "r");
    // A recovering daemon reports the replay before the listening line, so
    // scan until the line that carries the port.
    char line[256] = {0};
    while (stdout_ != nullptr && std::fgets(line, sizeof line, stdout_)) {
      if (std::strstr(line, "listening on") == nullptr) continue;
      const char* colon = std::strrchr(line, ':');
      if (colon != nullptr) port_ = std::atoi(colon + 1);
      break;
    }
  }

  ~BrokerDaemon() { kill_hard(); }

  int port() const { return port_; }

  /// SIGTERM the daemon and return its exit code (-1 on abnormal exit).
  int terminate() {
    if (pid_ <= 0) return -1;
    ::kill(pid_, SIGTERM);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  /// SIGKILL: simulates a crash — no drain, no final journal flush.
  void kill_hard() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
    if (stdout_ != nullptr) {
      std::fclose(stdout_);
      stdout_ = nullptr;
    }
  }

 private:
  pid_t pid_ = -1;
  std::FILE* stdout_ = nullptr;
  int port_ = 0;
};

TEST(EntkBroker, ServesWorkflowOverTcpAndShutsDownGracefully) {
  BrokerDaemon daemon;
  ASSERT_GT(daemon.port(), 0) << "daemon did not report a listening port";

  const std::string path = write_workflow(R"({
    "resource": {"resource": "local.localhost", "cpus": 8,
                 "clock_scale": 0.0001},
    "pipelines": [
      {"name": "p", "stages": [
        {"name": "s", "tasks": [
          {"name": "a", "executable": "sleep", "duration_s": 5},
          {"name": "b", "executable": "sleep", "duration_s": 5}
        ]}
      ]}
    ]
  })");
  EXPECT_EQ(
      run_tool(path + " --broker 127.0.0.1:" + std::to_string(daemon.port())),
      0);
  EXPECT_EQ(daemon.terminate(), 0);  // graceful drain on SIGTERM
}

TEST(EntkBroker, ShardedDaemonRecoversJournal) {
  // Crash/recover e2e across the sharded daemon: a --shards 3 daemon
  // journals durable queues into one file per shard; after a SIGKILL a
  // fresh daemon pointed at the shard-0 journal path must replay every
  // sibling shard file and hand the unacked backlog to a reconnecting
  // client, in FIFO order per queue.
  const std::string dir = ::testing::TempDir() + "/entk_broker_shards_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(entk::wall_now_us());
  std::filesystem::create_directories(dir);
  constexpr int kQueues = 6;
  constexpr int kPerQueue = 3;

  {
    BrokerDaemon daemon({"--shards", "3", "--journal-dir", dir,
                         "--journal-max-delay-ms", "0"});
    ASSERT_GT(daemon.port(), 0) << "daemon did not report a listening port";

    entk::net::RemoteBrokerConfig cfg;
    cfg.endpoint = "127.0.0.1:" + std::to_string(daemon.port());
    entk::net::RemoteBroker client(cfg);
    for (int q = 0; q < kQueues; ++q) {
      const std::string queue = "shardq" + std::to_string(q);
      client.declare_queue(queue, {.durable = true});
      for (int i = 0; i < kPerQueue; ++i) {
        entk::mq::Message m;
        m.set_body(queue + "#" + std::to_string(i));
        ASSERT_GT(client.publish(queue, std::move(m)), 0u);
      }
      // Ack the head of each queue: the replay must skip it.
      auto d = client.get(queue, 1.0);
      ASSERT_TRUE(d);
      EXPECT_EQ(d->message.body(), queue + "#0");
      EXPECT_TRUE(client.ack(queue, d->delivery_tag));
    }
    client.close();
    daemon.kill_hard();  // crash: unacked backlog only survives on disk
  }

  // Shard 0 journals at the historical single-file path; shards 1..N-1
  // add a ".K" suffix. The crash must have left more than one behind.
  const std::string journal = dir + "/entk_broker.journal";
  ASSERT_TRUE(std::filesystem::exists(journal));
  EXPECT_TRUE(std::filesystem::exists(journal + ".1"));
  EXPECT_TRUE(std::filesystem::exists(journal + ".2"));

  BrokerDaemon daemon({"--shards", "3", "--journal-dir", dir,
                       "--journal-max-delay-ms", "0", "--recover", journal});
  ASSERT_GT(daemon.port(), 0) << "recovered daemon did not report a port";

  entk::net::RemoteBrokerConfig cfg;
  cfg.endpoint = "127.0.0.1:" + std::to_string(daemon.port());
  entk::net::RemoteBroker client(cfg);
  for (int q = 0; q < kQueues; ++q) {
    const std::string queue = "shardq" + std::to_string(q);
    EXPECT_TRUE(client.has_queue(queue));
    auto batch = client.get_batch(queue, kPerQueue + 1, 1.0);
    ASSERT_EQ(batch.size(), std::size_t{kPerQueue - 1}) << queue;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].message.body(),
                queue + "#" + std::to_string(i + 1));
      EXPECT_TRUE(client.ack(queue, batch[i].delivery_tag));
    }
  }
  client.close();
  EXPECT_EQ(daemon.terminate(), 0);
  std::filesystem::remove_all(dir);
}

TEST(EntkBroker, ParkedGetFailsFastOnDisconnectAndWorksAfterReconnect) {
  // A long-poll get_batch parked on the server when the daemon dies must
  // fail its pending correlation slot single-shot — returning empty
  // promptly instead of hanging out its full timeout — and the SAME
  // client must serve gets again once a daemon is back on that port.
  const int port = [] {
    // Grab an ephemeral port, then free it for the daemon.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    socklen_t len = sizeof addr;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    ::close(fd);
    return static_cast<int>(ntohs(addr.sin_port));
  }();
  ASSERT_GT(port, 0);
  const std::string port_s = std::to_string(port);

  auto daemon = std::make_unique<BrokerDaemon>(
      std::vector<std::string>{"--port", port_s});
  ASSERT_EQ(daemon->port(), port);

  entk::net::RemoteBrokerConfig cfg;
  cfg.endpoint = "127.0.0.1:" + port_s;
  entk::net::RemoteBroker client(cfg);
  client.declare_queue("parked");

  std::atomic<double> parked_wall{0.0};
  std::thread parked([&] {
    const double t0 = entk::wall_now_s();
    // 30 s long poll on an empty queue: parks server-side.
    const auto batch = client.get_batch("parked", 4, 30.0);
    parked_wall = entk::wall_now_s() - t0;
    EXPECT_TRUE(batch.empty());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  daemon->kill_hard();  // connection reset while the get is outstanding
  parked.join();
  // Fail-fast, not timeout: well under the 30 s poll window.
  EXPECT_LT(parked_wall.load(), 10.0);

  // New daemon on the same port; the client reconnects, re-declares its
  // queues, and the next publish/get round-trip succeeds.
  daemon = std::make_unique<BrokerDaemon>(
      std::vector<std::string>{"--port", port_s});
  ASSERT_EQ(daemon->port(), port);
  entk::mq::Message m;
  m.set_body("after-reconnect");
  ASSERT_GT(client.publish("parked", std::move(m)), 0u);
  std::optional<entk::mq::Delivery> d;
  const double deadline = entk::wall_now_s() + 10.0;
  while (!d && entk::wall_now_s() < deadline) {
    d = client.get("parked", 0.5);
  }
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->message.body(), "after-reconnect");
  EXPECT_TRUE(client.ack("parked", d->delivery_tag));
  client.close();
  EXPECT_EQ(daemon->terminate(), 0);
}

TEST(EntkRun, RejectsMissingAndMalformedInput) {
  EXPECT_EQ(run_tool("/nonexistent/wf.json"), 2);
  EXPECT_EQ(run_tool(write_workflow("{not json")), 2);
  EXPECT_EQ(run_tool(""), 2);  // usage
  // Valid JSON but no pipelines key.
  EXPECT_EQ(run_tool(write_workflow("{\"resource\": {}}")), 2);
}

}  // namespace
