// End-to-end tests of the entk_run CLI: JSON workflow in, execution
// through the full stack, exit code out. The binary path is injected by
// CMake as ENTK_RUN_BINARY.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "src/common/clock.hpp"

#ifndef ENTK_RUN_BINARY
#define ENTK_RUN_BINARY "entk_run"
#endif

namespace {

std::string write_workflow(const std::string& body) {
  const std::string path = ::testing::TempDir() + "/wf_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(entk::wall_now_us()) + ".json";
  std::ofstream out(path);
  out << body;
  return path;
}

int run_tool(const std::string& args) {
  const std::string cmd =
      std::string(ENTK_RUN_BINARY) + " " + args + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(EntkRun, ExecutesSimulatedWorkflow) {
  const std::string path = write_workflow(R"({
    "resource": {"resource": "local.localhost", "cpus": 8,
                 "clock_scale": 0.0001},
    "pipelines": [
      {"name": "p", "stages": [
        {"name": "s", "tasks": [
          {"name": "a", "executable": "sleep", "duration_s": 5},
          {"name": "b", "executable": "sleep", "duration_s": 5}
        ]}
      ]}
    ]
  })");
  EXPECT_EQ(run_tool(path), 0);
}

TEST(EntkRun, RealProcessesRunAndGateLaterStages) {
  const std::string probe = ::testing::TempDir() + "/entk_run_test_probe_" +
                            std::to_string(::getpid());
  std::filesystem::remove(probe);
  const std::string path = write_workflow(R"({
    "resource": {"resource": "local.localhost", "cpus": 2,
                 "local_processes": true},
    "pipelines": [
      {"name": "p", "stages": [
        {"name": "create", "tasks": [
          {"name": "touch", "executable": "/usr/bin/touch",
           "arguments": [")" + probe + R"("]}
        ]},
        {"name": "check", "tasks": [
          {"name": "ls", "executable": "/bin/ls",
           "arguments": [")" + probe + R"("]}
        ]}
      ]}
    ]
  })");
  EXPECT_EQ(run_tool(path), 0);
  EXPECT_TRUE(std::filesystem::exists(probe));
  std::filesystem::remove(probe);
}

TEST(EntkRun, FailingProcessYieldsNonZeroExit) {
  const std::string path = write_workflow(R"({
    "resource": {"resource": "local.localhost", "cpus": 2,
                 "local_processes": true},
    "pipelines": [
      {"name": "p", "stages": [
        {"name": "s", "tasks": [
          {"name": "bad", "executable": "/bin/false"}
        ]}
      ]}
    ]
  })");
  EXPECT_EQ(run_tool(path), 1);
}

TEST(EntkRun, RetriesFlakyProcessesPerConfig) {
  // /bin/false always fails: with retries the tool still exits 1, but the
  // run completes (no hang) after the budget is consumed.
  const std::string path = write_workflow(R"({
    "resource": {"resource": "local.localhost", "cpus": 2,
                 "task_retry_limit": 2, "local_processes": true},
    "pipelines": [
      {"name": "p", "stages": [
        {"name": "s", "tasks": [
          {"name": "bad", "executable": "/bin/false"}
        ]}
      ]}
    ]
  })");
  EXPECT_EQ(run_tool(path), 1);
}

TEST(EntkRun, RejectsMissingAndMalformedInput) {
  EXPECT_EQ(run_tool("/nonexistent/wf.json"), 2);
  EXPECT_EQ(run_tool(write_workflow("{not json")), 2);
  EXPECT_EQ(run_tool(""), 2);  // usage
  // Valid JSON but no pipelines key.
  EXPECT_EQ(run_tool(write_workflow("{\"resource\": {}}")), 2);
}

}  // namespace
