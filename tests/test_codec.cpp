// Property tests for the binary typed-value (TLV) wire codec
// (net::append_value / net::decode_value) and the binary message encoding
// (net::append_message_binary / net::decode_message_binary): seeded random
// round-trips over every json::Value shape, integer/double edge cases,
// unicode and embedded-NUL strings, truncation at every split point,
// malformed-input rejection (unknown tags, depth bombs, lying container
// counts), and the zero-render / lazy-decode contract of TLV-backed
// messages.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>

#include "src/mq/message.hpp"
#include "src/net/frame.hpp"

namespace entk {
namespace {

std::string encode_value(const json::Value& v) {
  std::string out;
  net::append_value(out, v);
  return out;
}

json::Value decode_all(const std::string& wire) {
  std::size_t offset = 0;
  json::Value v = net::decode_value(wire, offset);
  EXPECT_EQ(offset, wire.size()) << "decoder left trailing bytes";
  return v;
}

void expect_round_trip(const json::Value& v) {
  const std::string wire = encode_value(v);
  EXPECT_EQ(decode_all(wire), v);
}

// Random value generator, depth-bounded so object/array recursion
// terminates. Seeded by the caller: failures must reproduce.
json::Value random_value(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> kind_pick(0, depth > 0 ? 6 : 4);
  std::uniform_int_distribution<std::uint64_t> u64;
  std::uniform_int_distribution<int> len_pick(0, 8);
  std::uniform_int_distribution<int> byte(0, 255);
  switch (kind_pick(rng)) {
    case 0:
      return json::Value();
    case 1:
      return json::Value(u64(rng) % 2 == 0);
    case 2:
      return json::Value(static_cast<std::int64_t>(u64(rng)));
    case 3: {
      // Bit-pattern doubles would hit NaNs; build from two bounded ints so
      // values stay comparable with operator==.
      const double d = static_cast<double>(static_cast<std::int64_t>(
                           u64(rng) % 1000000)) /
                       (1.0 + static_cast<double>(u64(rng) % 997));
      return json::Value(u64(rng) % 2 == 0 ? d : -d);
    }
    case 4: {
      std::string s(static_cast<std::size_t>(len_pick(rng)) * 3, '\0');
      for (char& c : s) c = static_cast<char>(byte(rng));
      return json::Value(std::move(s));
    }
    case 5: {
      json::Array arr;
      const int n = len_pick(rng);
      for (int i = 0; i < n; ++i) arr.push_back(random_value(rng, depth - 1));
      return json::Value(std::move(arr));
    }
    default: {
      json::Object obj;
      const int n = len_pick(rng);
      for (int i = 0; i < n; ++i) {
        obj["k" + std::to_string(i)] = random_value(rng, depth - 1);
      }
      return json::Value(std::move(obj));
    }
  }
}

TEST(TlvCodec, RandomValuesRoundTrip) {
  std::mt19937 rng(20260808);  // seeded: failures must reproduce
  for (int i = 0; i < 500; ++i) {
    expect_round_trip(random_value(rng, 4));
  }
}

TEST(TlvCodec, ScalarsRoundTrip) {
  expect_round_trip(json::Value());
  expect_round_trip(json::Value(true));
  expect_round_trip(json::Value(false));
  expect_round_trip(json::Value(std::string()));
  expect_round_trip(json::Value(json::Array{}));
  expect_round_trip(json::Value(json::Object{}));
}

TEST(TlvCodec, Int64EdgesRoundTripExactly) {
  for (std::int64_t v : {std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::min() + 1,
                         std::int64_t{-1}, std::int64_t{0}, std::int64_t{1},
                         std::numeric_limits<std::int64_t>::max() - 1,
                         std::numeric_limits<std::int64_t>::max()}) {
    const json::Value decoded = decode_all(encode_value(json::Value(v)));
    EXPECT_EQ(decoded.as_int(), v);
  }
}

TEST(TlvCodec, DoubleEdgesRoundTripBitExactly) {
  for (double v : {0.0, -0.0, 1.0, -1.0, 0.1,
                   std::numeric_limits<double>::min(),
                   std::numeric_limits<double>::max(),
                   std::numeric_limits<double>::denorm_min(),
                   std::numeric_limits<double>::epsilon()}) {
    const json::Value decoded = decode_all(encode_value(json::Value(v)));
    std::uint64_t got, want;
    const double g = decoded.as_double();
    std::memcpy(&got, &g, sizeof got);
    std::memcpy(&want, &v, sizeof want);
    EXPECT_EQ(got, want) << "double " << v;
  }
  // Non-finite values have no JSON text form, but the TLV codec is a bit
  // copy and must carry them unchanged.
  const json::Value inf =
      decode_all(encode_value(json::Value(
          std::numeric_limits<double>::infinity())));
  EXPECT_TRUE(std::isinf(inf.as_double()));
  const json::Value nan = decode_all(
      encode_value(json::Value(std::numeric_limits<double>::quiet_NaN())));
  EXPECT_TRUE(std::isnan(nan.as_double()));
}

TEST(TlvCodec, UnicodeAndEmbeddedNulStringsRoundTrip) {
  expect_round_trip(json::Value(std::string("héllo wörld — ≠ 日本語 🚀")));
  expect_round_trip(json::Value(std::string("nul\0inside", 10)));
  json::Object obj;
  obj["ключ"] = json::Value(std::string("значение"));
  obj[std::string("k\0ey", 4)] = json::Value(std::int64_t{7});
  expect_round_trip(json::Value(std::move(obj)));
}

TEST(TlvCodec, TruncationAtEverySplitPointThrows) {
  json::Value v;
  v["uid"] = "task.0001";
  v["n"] = std::int64_t{42};
  v["d"] = 3.25;
  json::Array arr;
  arr.push_back(json::Value(true));
  arr.push_back(json::Value(std::string("xyz")));
  v["arr"] = std::move(arr);
  const std::string wire = encode_value(v);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    std::size_t offset = 0;
    EXPECT_THROW(net::decode_value(std::string_view(wire.data(), cut), offset),
                 net::NetError)
        << "cut at " << cut;
  }
}

TEST(TlvCodec, UnknownTagRejected) {
  std::string wire;
  wire.push_back(static_cast<char>(0x3f));
  std::size_t offset = 0;
  EXPECT_THROW(net::decode_value(wire, offset), net::NetError);
}

TEST(TlvCodec, DepthBombRejected) {
  // kMaxValueDepth + 2 nested single-element arrays: tag 6 + count 1 each.
  std::string wire;
  for (std::size_t i = 0; i < net::kMaxValueDepth + 2; ++i) {
    wire.push_back(6);
    net::put_u32(wire, 1);
  }
  wire.push_back(0);  // innermost null
  std::size_t offset = 0;
  EXPECT_THROW(net::decode_value(wire, offset), net::NetError);
}

TEST(TlvCodec, LyingContainerCountRejectedBeforeAllocating) {
  // An array claiming 2^31 elements inside a 6-byte buffer must be
  // rejected up front, not reserved for.
  std::string wire;
  wire.push_back(6);
  net::put_u32(wire, 0x7fffffffu);
  std::size_t offset = 0;
  EXPECT_THROW(net::decode_value(wire, offset), net::NetError);
}

// ------------------------------------------------- binary message codec

mq::Message structured_message() {
  json::Value payload;
  payload["uid"] = "task.0042";
  payload["t"] = 1.5e9;
  json::Array data;
  for (int i = 0; i < 16; ++i) data.push_back(std::int64_t{1} << i);
  payload["data"] = std::move(data);
  json::Value headers;
  headers["attempt"] = std::int64_t{2};
  mq::Message m = mq::Message::json_body("q.x", std::move(payload),
                                         std::move(headers));
  m.seq = 99;
  return m;
}

std::string encode_message(const mq::Message& m) {
  std::string out;
  net::append_message_binary(out, m);
  return out;
}

mq::Message decode_message(const std::string& wire) {
  std::size_t offset = 0;
  mq::Message m = net::decode_message_binary(wire, offset);
  EXPECT_EQ(offset, wire.size());
  return m;
}

TEST(BinaryMessage, StructuredPayloadRoundTripsWithoutRenderingJson) {
  const mq::Message original = structured_message();
  const std::uint64_t renders_before = mq::body_render_count();
  const std::string wire = encode_message(original);
  mq::Message decoded = decode_message(wire);
  EXPECT_EQ(decoded.seq, original.seq);
  EXPECT_EQ(decoded.headers, original.headers);
  // Decoding keeps the TLV bytes; the value materializes lazily.
  ASSERT_NE(decoded.shared_tlv_payload(), nullptr);
  EXPECT_FALSE(decoded.has_payload());
  EXPECT_EQ(mq::body_render_count(), renders_before);
  EXPECT_EQ(*decoded.payload(), *original.payload());
  EXPECT_EQ(mq::body_render_count(), renders_before);  // decode, not render
}

TEST(BinaryMessage, TlvBackedMessageRelaysVerbatim) {
  // broker-in-the-middle: decode off one connection, re-encode for
  // another. The payload bytes must pass through untouched with no decode
  // and no render.
  const std::string wire = encode_message(structured_message());
  const std::uint64_t renders_before = mq::body_render_count();
  mq::Message relay = decode_message(wire);
  const std::string rewire = encode_message(relay);
  EXPECT_EQ(rewire, wire);
  EXPECT_FALSE(relay.has_payload());  // never decoded
  EXPECT_EQ(mq::body_render_count(), renders_before);
}

TEST(BinaryMessage, TlvBackedMessageRendersBodyOnDemand) {
  mq::Message decoded = decode_message(encode_message(structured_message()));
  const std::uint64_t renders_before = mq::body_render_count();
  // A byte boundary that genuinely needs JSON text (journal, text peer)
  // pays exactly one decode + one render.
  const std::string& body = decoded.body();
  EXPECT_EQ(mq::body_render_count(), renders_before + 1);
  EXPECT_EQ(json::parse(body).at("uid").as_string(), "task.0042");
}

TEST(BinaryMessage, RenderedBodyShipsVerbatimBytes) {
  mq::Message m;
  m.seq = 7;
  m.set_body(std::string("opaque \0 bytes, not json", 24));
  mq::Message decoded = decode_message(encode_message(m));
  EXPECT_EQ(decoded.seq, 7u);
  ASSERT_TRUE(decoded.has_rendered_body());
  EXPECT_EQ(decoded.body(), m.body());
}

TEST(BinaryMessage, EmptyMessageRoundTrips) {
  mq::Message m;
  m.seq = 1;
  mq::Message decoded = decode_message(encode_message(m));
  EXPECT_EQ(decoded.seq, 1u);
  EXPECT_FALSE(decoded.has_payload());
  EXPECT_FALSE(decoded.has_rendered_body());
  EXPECT_EQ(decoded.shared_tlv_payload(), nullptr);
}

TEST(BinaryMessage, TruncationAtEverySplitPointThrows) {
  const std::string wire = encode_message(structured_message());
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    std::size_t offset = 0;
    EXPECT_THROW(net::decode_message_binary(
                     std::string_view(wire.data(), cut), offset),
                 net::NetError)
        << "cut at " << cut;
  }
}

TEST(BinaryMessage, MalformedPayloadRejectedAtDecodeNotAtConsumer) {
  // A TLV payload with a bogus tag: the frame decoder must throw when the
  // message crosses the boundary, not when a consumer later reads it.
  std::string wire;
  wire.push_back(0);      // headers: null
  net::put_u64(wire, 5);  // seq
  wire.push_back(2);      // payload kind: typed value
  wire.push_back(0x3f);   // unknown TLV tag
  std::size_t offset = 0;
  EXPECT_THROW(net::decode_message_binary(wire, offset), net::NetError);
}

TEST(BinaryMessage, UnknownPayloadKindRejected) {
  std::string wire;
  wire.push_back(0);      // headers: null
  net::put_u64(wire, 5);  // seq
  wire.push_back(9);      // no such payload kind
  std::size_t offset = 0;
  EXPECT_THROW(net::decode_message_binary(wire, offset), net::NetError);
}

TEST(BinaryMessage, SettersDropStaleTlvRepresentation) {
  mq::Message decoded = decode_message(encode_message(structured_message()));
  ASSERT_NE(decoded.shared_tlv_payload(), nullptr);
  decoded.set_body("replaced");
  EXPECT_EQ(decoded.shared_tlv_payload(), nullptr);
  EXPECT_EQ(decoded.body(), "replaced");
}

}  // namespace
}  // namespace entk
