// Multi-tenant broker tests: queue namespacing, tenant registry and token
// bucket semantics, hello-handshake edge cases (old clients, invalid ids,
// rebinds, codec+tenant combined), per-tenant quota backpressure
// (kErrQuota -> bounded retry -> QuotaError), cross-tenant isolation of
// identically-named queues, the connection accept cap, fair-scheduling
// smoke, and per-tenant journal partition recovery.
#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "src/common/clock.hpp"
#include "src/mq/broker.hpp"
#include "src/mq/tenant.hpp"
#include "src/net/broker_server.hpp"
#include "src/net/frame.hpp"
#include "src/net/remote_broker.hpp"
#include "src/net/socket.hpp"

namespace entk {
namespace {

mq::Message text_message(const std::string& queue, const std::string& text) {
  json::Value payload;
  payload["text"] = text;
  return mq::Message::json_body(queue, std::move(payload));
}

std::string text_of(const mq::Delivery& d) {
  return d.message.payload()->get_string("text", "");
}

std::string fresh_dir() {
  const std::string dir = ::testing::TempDir() + "/entk_tenant_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(entk::wall_now_us());
  std::filesystem::create_directories(dir);
  return dir;
}

// ------------------------------------------------------ namespacing unit

TEST(TenantNamespacing, DefaultTenantIsIdentity) {
  EXPECT_EQ(mq::tenant_queue_prefix(""), "");
  EXPECT_EQ(mq::qualify_queue("", "q.pending"), "q.pending");
  EXPECT_EQ(mq::tenant_of_queue("q.pending"), "");
  EXPECT_EQ(mq::unqualify_queue("q.pending"), "q.pending");
}

TEST(TenantNamespacing, QualifyAndStripRoundTrip) {
  EXPECT_EQ(mq::tenant_queue_prefix("md-1"), "t.md-1/");
  const std::string physical = mq::qualify_queue("md-1", "q.pending");
  EXPECT_EQ(physical, "t.md-1/q.pending");
  EXPECT_EQ(mq::tenant_of_queue(physical), "md-1");
  EXPECT_EQ(mq::unqualify_queue(physical), "q.pending");
}

TEST(TenantNamespacing, PrefixesNeverAliasAcrossTenants) {
  // "t.a" is a valid tenant id but its prefix "t.t.a/" cannot collide
  // with tenant "a"'s "t.a/" because '/' is not a valid id character.
  EXPECT_EQ(mq::tenant_of_queue(mq::qualify_queue("t.a", "q")), "t.a");
  EXPECT_EQ(mq::tenant_of_queue(mq::qualify_queue("a", "t.q")), "a");
  EXPECT_FALSE(mq::valid_tenant_id("a/b"));
}

TEST(TenantNamespacing, IdValidation) {
  EXPECT_TRUE(mq::valid_tenant_id(""));  // the default tenant
  EXPECT_TRUE(mq::valid_tenant_id("Ensemble_42.v-1"));
  EXPECT_TRUE(mq::valid_tenant_id("9starts-with-digit"));
  EXPECT_FALSE(mq::valid_tenant_id("has space"));
  EXPECT_FALSE(mq::valid_tenant_id("semi;colon"));
  EXPECT_FALSE(mq::valid_tenant_id(std::string(65, 'a')));
  EXPECT_TRUE(mq::valid_tenant_id(std::string(64, 'a')));
}

TEST(TenantNamespacing, IdValidationRejectsPathTraversal) {
  // Tenant ids name journal subdirectories: "." would alias the default
  // tenant's journal file (two writers on one file) and ".." would write
  // outside --journal-dir entirely. The leading-alphanumeric rule keeps
  // both — and every other dot- or dash-led name — out.
  EXPECT_FALSE(mq::valid_tenant_id("."));
  EXPECT_FALSE(mq::valid_tenant_id(".."));
  EXPECT_FALSE(mq::valid_tenant_id("..."));
  EXPECT_FALSE(mq::valid_tenant_id(".hidden"));
  EXPECT_FALSE(mq::valid_tenant_id("-dash-led"));
  EXPECT_FALSE(mq::valid_tenant_id("_underscore-led"));
  EXPECT_TRUE(mq::valid_tenant_id("a..b"));  // interior dots are fine
}

// ------------------------------------------------------------ token bucket

TEST(TenantQuotaBucket, BurstAdmittedThenRateLimited) {
  mq::TenantQuota quota;
  quota.publish_rate = 100.0;
  quota.burst = 5.0;
  mq::Tenant tenant("b", quota);
  double retry_after = 0.0;
  // The bucket starts full: the first burst is admitted outright.
  EXPECT_TRUE(tenant.try_acquire_rate(5, &retry_after));
  // Empty bucket: rejected, with a finite analytic retry hint.
  EXPECT_FALSE(tenant.try_acquire_rate(1, &retry_after));
  EXPECT_GT(retry_after, 0.0);
  EXPECT_LE(retry_after, 1.0);
  // After the hinted wait the tokens have accrued.
  std::this_thread::sleep_for(
      std::chrono::duration<double>(retry_after + 0.01));
  EXPECT_TRUE(tenant.try_acquire_rate(1, &retry_after));
}

TEST(TenantQuotaBucket, BatchLargerThanBucketRunsUpTokenDebt) {
  mq::TenantQuota quota;
  quota.publish_rate = 1000.0;
  quota.burst = 4.0;
  mq::Tenant tenant("b", quota);
  double retry_after = 0.0;
  // need=100 can never fit the 4-token bucket; it is admitted against a
  // full bucket by overdrawing (otherwise a big publish_batch could never
  // be admitted at all)...
  EXPECT_TRUE(tenant.try_acquire_rate(100, &retry_after));
  // ...and the debt throttles what follows: the next single message has
  // to wait for ~(1 - (4 - 100)) / 1000 seconds of refill, so the
  // sustained rate still holds.
  EXPECT_FALSE(tenant.try_acquire_rate(1, &retry_after));
  EXPECT_GT(retry_after, 90.0 / 1000.0);
  EXPECT_LE(retry_after, 100.0 / 1000.0);
}

TEST(TenantQuotaBucket, NoRateQuotaAlwaysAdmits) {
  mq::Tenant tenant("free", mq::TenantQuota{});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(tenant.try_acquire_rate(1000, nullptr));
  }
}

// --------------------------------------------------------------- registry

TEST(TenantRegistry, AutoRegisterAndLookup) {
  mq::TenantRegistry registry;
  EXPECT_TRUE(registry.has_tenant(""));  // default always exists
  EXPECT_FALSE(registry.has_tenant("a"));
  auto a = registry.bind("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(registry.find("a"), a);
  EXPECT_EQ(registry.bind("a"), a);  // stable across re-binds
  ASSERT_EQ(registry.tenants().size(), 1u);
  EXPECT_EQ(registry.tenants()[0]->id(), "a");
}

TEST(TenantRegistry, ClosedRegistryRejectsUnknownIds) {
  mq::TenantRegistryConfig cfg;
  cfg.auto_register = false;
  mq::TenantRegistry registry(cfg);
  registry.register_tenant("known", {});
  EXPECT_NE(registry.bind("known"), nullptr);
  EXPECT_EQ(registry.bind("ghost"), nullptr);
  EXPECT_NE(registry.bind(""), nullptr);  // default always binds
}

TEST(TenantRegistry, RejectsInvalidIdsAndDefaultQuota) {
  mq::TenantRegistry registry;
  EXPECT_THROW(registry.register_tenant("bad/id", {}), ValueError);
  EXPECT_THROW(registry.register_tenant("", {}), ValueError);
  EXPECT_EQ(registry.bind("bad/id"), nullptr);
  // Path-traversal ids never reach ensure_partition via auto-register.
  EXPECT_THROW(registry.register_tenant(".", {}), ValueError);
  EXPECT_THROW(registry.register_tenant("..", {}), ValueError);
  EXPECT_EQ(registry.bind("."), nullptr);
  EXPECT_EQ(registry.bind(".."), nullptr);
}

TEST(TenantRegistry, QuotaReplaceableOnlyBeforeTraffic) {
  mq::TenantRegistry registry;
  mq::TenantQuota quota;
  quota.max_queue_depth = 5;
  registry.register_tenant("a", quota);
  quota.max_queue_depth = 10;
  registry.register_tenant("a", quota);  // no traffic yet: fine
  EXPECT_EQ(registry.find("a")->quota().max_queue_depth, 10u);
  registry.find("a")->count_published(1);
  EXPECT_THROW(registry.register_tenant("a", quota), StateError);
}

// ------------------------------------------------------- loopback fixture

class TenantLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tenants_ = std::make_shared<mq::TenantRegistry>();
    StartServer();
  }

  void StartServer() {
    broker_ = std::make_shared<mq::Broker>("loopback");
    net::BrokerServerConfig cfg;
    cfg.tenants = tenants_;
    cfg.max_connections = max_connections_;
    server_ = std::make_unique<net::BrokerServer>(broker_, cfg,
                                                  std::make_shared<Profiler>());
    server_->start();
  }

  std::unique_ptr<net::RemoteBroker> Client(const std::string& tenant,
                                            double retry_deadline_s = 10.0) {
    net::RemoteBrokerConfig cfg;
    cfg.endpoint = server_->endpoint();
    cfg.tenant = tenant;
    cfg.retry_deadline_s = retry_deadline_s;
    return std::make_unique<net::RemoteBroker>(cfg);
  }

  void TearDown() override {
    if (server_) server_->stop();
    if (broker_) broker_->close();
  }

  std::size_t max_connections_ = 0;
  mq::TenantRegistryPtr tenants_;
  mq::BrokerPtr broker_;
  std::unique_ptr<net::BrokerServer> server_;
};

// ------------------------------------------------- isolation + collision

TEST_F(TenantLoopbackTest, DefaultTenantClientsCollideOnQueueNames) {
  // Regression capture of the pre-tenancy failure mode this PR exists
  // for: two ensembles sharing one daemon WITHOUT tenants land on the
  // same physical queue — one application's consumer steals the other's
  // messages.
  auto app1 = Client("");
  auto app2 = Client("");
  app1->declare_queue("q.pending", {});
  app2->declare_queue("q.pending", {});
  app1->publish("q.pending", text_message("q.pending", "belongs-to-app1"));
  auto stolen = app2->get("q.pending", 1.0);
  ASSERT_TRUE(stolen.has_value());  // app2 sees app1's message: collided
  EXPECT_EQ(text_of(*stolen), "belongs-to-app1");
  app2->close();
  app1->close();
}

TEST_F(TenantLoopbackTest, TwoEnsemblesOneDaemonIsolatedByTenant) {
  // The same scenario WITH tenants: identical client-visible queue names,
  // disjoint physical queues, no cross-talk in either direction.
  auto app1 = Client("app1");
  auto app2 = Client("app2");
  app1->declare_queue("q.pending", {});
  app2->declare_queue("q.pending", {});
  app1->publish("q.pending", text_message("q.pending", "for-app1"));
  app2->publish("q.pending", text_message("q.pending", "for-app2"));

  auto d2 = app2->get("q.pending", 1.0);
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(text_of(*d2), "for-app2");
  EXPECT_TRUE(app2->ack("q.pending", d2->delivery_tag));
  EXPECT_FALSE(app2->get("q.pending", 0.0).has_value());  // nothing else

  auto d1 = app1->get("q.pending", 1.0);
  ASSERT_TRUE(d1.has_value());
  EXPECT_EQ(text_of(*d1), "for-app1");

  // The daemon's physical namespace holds the two qualified queues.
  EXPECT_TRUE(broker_->has_queue("t.app1/q.pending"));
  EXPECT_TRUE(broker_->has_queue("t.app2/q.pending"));
  EXPECT_FALSE(broker_->has_queue("q.pending"));
  app1->close();
  app2->close();
}

TEST_F(TenantLoopbackTest, DepthSnapshotIsTenantScoped) {
  auto app1 = Client("app1");
  auto app2 = Client("app2");
  auto legacy = Client("");
  app1->declare_queue("q.w", {});
  app2->declare_queue("q.w", {});
  legacy->declare_queue("q.w", {});
  app1->publish("q.w", text_message("q.w", "a"));
  app1->publish("q.w", text_message("q.w", "b"));
  app2->publish("q.w", text_message("q.w", "c"));

  // Each tenant sees its own depths under its *client-visible* names.
  const auto d1 = app1->depth_snapshot();
  ASSERT_EQ(d1.size(), 1u);
  EXPECT_EQ(d1[0].queue, "q.w");
  EXPECT_EQ(d1[0].ready, 2u);
  const auto d2 = app2->depth_snapshot();
  ASSERT_EQ(d2.size(), 1u);
  EXPECT_EQ(d2[0].ready, 1u);
  // The default tenant sees only unqualified queues — tenant-qualified
  // ones are other applications' business.
  const auto d0 = legacy->depth_snapshot();
  ASSERT_EQ(d0.size(), 1u);
  EXPECT_EQ(d0[0].queue, "q.w");
  EXPECT_EQ(d0[0].ready, 0u);
  app1->close();
  app2->close();
  legacy->close();
}

// ----------------------------------------------------- hello edge cases

TEST_F(TenantLoopbackTest, OldClientWithoutHelloLandsInDefaultTenant) {
  // binary_codec off + no tenant = the client never sends kHello at all
  // (byte-identical to the PR 5 wire behavior).
  net::RemoteBrokerConfig cfg;
  cfg.endpoint = server_->endpoint();
  cfg.binary_codec = false;
  net::RemoteBroker old_peer(cfg);
  old_peer.declare_queue("q.legacy", {});
  old_peer.publish("q.legacy", text_message("q.legacy", "old"));
  EXPECT_EQ(old_peer.negotiated_codec(), net::kCodecText);
  // Landed on the unqualified (default-tenant) physical queue.
  EXPECT_TRUE(broker_->has_queue("q.legacy"));
  auto d = old_peer.get("q.legacy", 1.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(text_of(*d), "old");
  old_peer.close();
}

TEST_F(TenantLoopbackTest, BinaryCodecAndTenantHelloCombine) {
  // One kHello carries both negotiations: the codec offer in arg, the
  // tenant id in the body.
  auto client = Client("combo");
  client->declare_queue("q.c", {});
  client->has_queue("q.c");  // forces a settled round trip
  EXPECT_EQ(client->negotiated_codec(), net::kCodecBinary);
  client->publish("q.c", text_message("q.c", "x"));
  EXPECT_TRUE(broker_->has_queue("t.combo/q.c"));
  auto d = client->get("q.c", 1.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(text_of(*d), "x");
  client->close();
}

TEST_F(TenantLoopbackTest, InvalidTenantIdIsRefusedNotDefaulted) {
  // A misaddressed ensemble must fail loudly, not silently run in the
  // default namespace: the server answers kError and drops the
  // connection, so the client's operations exhaust their retry budget.
  auto client = Client("not/valid", /*retry_deadline_s=*/0.5);
  EXPECT_THROW(client->declare_queue("q.x", {}), MqError);
  EXPECT_FALSE(broker_->has_queue("q.x"));
  client->close();
}

TEST_F(TenantLoopbackTest, UnknownTenantRejectedWhenAutoRegisterOff) {
  mq::TenantRegistryConfig reg_cfg;
  reg_cfg.auto_register = false;
  tenants_ = std::make_shared<mq::TenantRegistry>(reg_cfg);
  tenants_->register_tenant("enrolled", {});
  if (server_) server_->stop();
  if (broker_) broker_->close();
  StartServer();

  auto good = Client("enrolled");
  good->declare_queue("q.ok", {});
  EXPECT_TRUE(broker_->has_queue("t.enrolled/q.ok"));
  good->close();

  auto ghost = Client("ghost", /*retry_deadline_s=*/0.5);
  EXPECT_THROW(ghost->declare_queue("q.x", {}), MqError);
  ghost->close();
}

// Raw-frame client for handshake sequences the RemoteBroker never emits.
class RawConn {
 public:
  explicit RawConn(const std::string& endpoint) {
    std::string host;
    std::uint16_t port = 0;
    EXPECT_TRUE(net::split_endpoint(endpoint, host, port));
    fd_ = net::connect_tcp(host, port, 2.0);
    EXPECT_GE(fd_, 0);
  }
  ~RawConn() {
    if (fd_ >= 0) net::close_fd(fd_);
  }

  void send(const net::Frame& frame) {
    const std::string wire = net::encode_frame(frame);
    ASSERT_EQ(::send(fd_, wire.data(), wire.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(wire.size()));
  }

  std::optional<net::Frame> recv_frame(double timeout_s = 2.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_s);
    while (true) {
      std::optional<net::Frame> frame = net::decode_frame(buf_, off_);
      if (frame.has_value()) return frame;
      if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 50) <= 0) continue;
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return std::nullopt;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
  std::size_t off_ = 0;
};

net::Frame hello_frame(const std::string& tenant, std::uint64_t corr) {
  net::Frame f;
  f.op = net::Op::kHello;
  f.corr = corr;
  f.arg = net::kCodecBinary;
  f.body = tenant;
  return f;
}

TEST_F(TenantLoopbackTest, HelloTwiceSameIdIsIdempotent) {
  RawConn raw(server_->endpoint());
  raw.send(hello_frame("dup", 1));
  auto first = raw.recv_frame();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->op, net::Op::kHello);
  EXPECT_EQ(first->corr, 1u);
  // Reconnect paths re-send the hello; the binding must not complain.
  raw.send(hello_frame("dup", 2));
  auto second = raw.recv_frame();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->op, net::Op::kHello);
  EXPECT_EQ(second->corr, 2u);
}

TEST_F(TenantLoopbackTest, HelloRebindToDifferentTenantIsRefused) {
  RawConn raw(server_->endpoint());
  raw.send(hello_frame("first", 1));
  auto ok = raw.recv_frame();
  ASSERT_TRUE(ok.has_value());
  ASSERT_EQ(ok->op, net::Op::kHello);
  raw.send(hello_frame("second", 2));
  auto refused = raw.recv_frame();
  ASSERT_TRUE(refused.has_value());
  EXPECT_EQ(refused->op, net::Op::kError);
  EXPECT_NE(refused->body.find("cannot rebind"), std::string::npos);
  // The original binding survives the refused rebind: a declare still
  // lands inside "first".
  net::Frame declare;
  declare.op = net::Op::kDeclare;
  declare.corr = 3;
  declare.queue = "q.mine";
  raw.send(declare);
  auto resp = raw.recv_frame();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->op, net::Op::kOk);
  EXPECT_TRUE(broker_->has_queue("t.first/q.mine"));
  EXPECT_FALSE(broker_->has_queue("t.second/q.mine"));
}

TEST_F(TenantLoopbackTest, HelloWithDotTenantIdsIsRefused) {
  // "." and ".." are structurally invalid ids (they name journal
  // subdirectories, where they alias or escape --journal-dir): the hello
  // is refused even with auto-register on.
  for (const std::string id : {".", ".."}) {
    RawConn raw(server_->endpoint());
    raw.send(hello_frame(id, 1));
    auto resp = raw.recv_frame();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->op, net::Op::kError);
    EXPECT_NE(resp->body.find("invalid tenant"), std::string::npos);
  }
}

// ---------------------------------------------- namespace integrity on wire

TEST_F(TenantLoopbackTest, QualifiedQueueNamesRejectedOnTheWire) {
  // Regression for the isolation bypass: "t.<id>/" is the daemon's
  // reserved qualification prefix, so a client sending the *physical*
  // name of another tenant's queue would read and write that tenant's
  // messages while every quota check still looked at its own connection's
  // tenant. Such names are refused at the frame boundary, for every
  // connection — including tenant-less legacy ones.
  mq::TenantQuota quota;
  quota.max_queue_depth = 1;
  tenants_->register_tenant("victim", quota);
  auto victim = Client("victim");
  victim->declare_queue("q.pending", {});
  victim->publish("q.pending", text_message("q.pending", "secret"));

  // A legacy connection that never sends kHello (pre-tenancy wire
  // behavior, conn.tenant unset) gets kError on every op naming the
  // qualified queue — it can neither steal nor inject nor evade the
  // victim's depth quota by publishing into its namespace directly.
  net::RemoteBrokerConfig snoop_cfg;
  snoop_cfg.endpoint = server_->endpoint();
  snoop_cfg.binary_codec = false;
  net::RemoteBroker snoop(snoop_cfg);
  EXPECT_THROW(snoop.get("t.victim/q.pending", 0.0), MqError);
  EXPECT_THROW(
      snoop.publish("t.victim/q.pending", text_message("q.pending", "inj")),
      MqError);
  EXPECT_THROW(snoop.declare_queue("t.victim/q.other", {}), MqError);
  snoop.close();

  // Same refusal for a tenant-bound connection naming a foreign
  // namespace (checked before its own prefix is applied).
  auto intruder = Client("intruder");
  EXPECT_THROW(intruder->declare_queue("t.victim/q.x", {}), MqError);
  intruder->close();

  // The refusal is a clean error frame naming the reservation.
  RawConn raw(server_->endpoint());
  net::Frame declare;
  declare.op = net::Op::kDeclare;
  declare.corr = 7;
  declare.queue = "t.victim/q.pending";
  raw.send(declare);
  auto resp = raw.recv_frame();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->op, net::Op::kError);
  EXPECT_NE(resp->body.find("reserved"), std::string::npos);

  // The victim's message never moved.
  auto d = victim->get("q.pending", 1.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(text_of(*d), "secret");
  victim->close();
}

// ------------------------------------------------------- quota over wire

TEST_F(TenantLoopbackTest, RateQuotaThrottlesThenAdmits) {
  mq::TenantQuota quota;
  quota.publish_rate = 200.0;
  quota.burst = 4.0;
  tenants_->register_tenant("paced", quota);

  auto client = Client("paced");
  client->declare_queue("q.p", {});
  for (int i = 0; i < 24; ++i) {
    client->publish("q.p", text_message("q.p", "m" + std::to_string(i)));
  }
  // Every message eventually landed...
  const auto got = client->get_batch("q.p", 24, 1.0);
  EXPECT_EQ(got.size(), 24u);
  // ...but the flood outran the bucket: throttles happened on both ends.
  EXPECT_GT(client->quota_throttled(), 0u);
  EXPECT_GT(server_->quota_rejections(), 0u);
  EXPECT_GT(tenants_->find("paced")->throttled(), 0u);
  EXPECT_EQ(tenants_->find("paced")->published(), 24u);
  client->close();
}

TEST_F(TenantLoopbackTest, RateQuotaExhaustionThrowsQuotaError) {
  mq::TenantQuota quota;
  quota.publish_rate = 0.5;  // one token every two seconds
  quota.burst = 1.0;
  tenants_->register_tenant("slow", quota);

  auto client = Client("slow", /*retry_deadline_s=*/0.4);
  client->declare_queue("q.s", {});
  client->publish("q.s", text_message("q.s", "first"));  // burst token
  EXPECT_THROW(
      client->publish("q.s", text_message("q.s", "second")),
      mq::QuotaError);
  client->close();
}

TEST_F(TenantLoopbackTest, DepthQuotaBlocksUntilBacklogDrains) {
  mq::TenantQuota quota;
  quota.max_queue_depth = 3;
  tenants_->register_tenant("bounded", quota);

  auto client = Client("bounded", /*retry_deadline_s=*/0.4);
  client->declare_queue("q.b", {});
  for (int i = 0; i < 3; ++i) {
    client->publish("q.b", text_message("q.b", "m" + std::to_string(i)));
  }
  // Backlog full (ready counts): the 4th publish is backpressured.
  EXPECT_THROW(client->publish("q.b", text_message("q.b", "overflow")),
               mq::QuotaError);

  // Consuming is not publishing — the quota must never deadlock a tenant
  // that is draining. Ack one and the same publish goes through.
  auto d = client->get("q.b", 1.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(client->ack("q.b", d->delivery_tag));
  client->publish("q.b", text_message("q.b", "fits-now"));
  client->close();
}

TEST_F(TenantLoopbackTest, ByteQuotaCountsPayloadBytes) {
  mq::TenantQuota quota;
  quota.max_bytes = 64;
  tenants_->register_tenant("thin", quota);

  auto client = Client("thin", /*retry_deadline_s=*/0.4);
  client->declare_queue("q.fat", {});
  client->publish("q.fat",
                  text_message("q.fat", std::string(256, 'x')));  // admitted
  EXPECT_THROW(client->publish("q.fat", text_message("q.fat", "one-more")),
               mq::QuotaError);
  // Draining the backlog readmits.
  auto d = client->get("q.fat", 1.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(client->ack("q.fat", d->delivery_tag));
  client->publish("q.fat", text_message("q.fat", "fits"));
  client->close();
}

TEST_F(TenantLoopbackTest, ByteQuotaAccountsTheIncomingPublish) {
  // The byte check folds the incoming frame's size in (known before any
  // decode): a tenant sitting just under its limit cannot overshoot
  // max_bytes by one arbitrarily large publish.
  mq::TenantQuota quota;
  quota.max_bytes = 4096;
  tenants_->register_tenant("tight", quota);

  auto client = Client("tight", /*retry_deadline_s=*/0.4);
  client->declare_queue("q.t", {});
  client->publish("q.t", text_message("q.t", std::string(512, 'a')));
  // Backlog ~512 bytes, under the quota — but admitting another 8KiB
  // would blow well past max_bytes, so it is rejected up front.
  EXPECT_THROW(
      client->publish("q.t", text_message("q.t", std::string(8192, 'b'))),
      mq::QuotaError);
  // Against an EMPTY backlog the oversized publish is admitted (the
  // estimate is clamped to the quota, mirroring the token bucket's debt)
  // — otherwise a payload larger than max_bytes could never be published.
  auto d = client->get("q.t", 1.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(client->ack("q.t", d->delivery_tag));
  client->publish("q.t", text_message("q.t", std::string(8192, 'b')));
  client->close();
}

TEST_F(TenantLoopbackTest, QuotaNeverTouchesOtherTenants) {
  mq::TenantQuota quota;
  quota.max_queue_depth = 1;
  tenants_->register_tenant("capped", quota);

  auto capped = Client("capped", /*retry_deadline_s=*/0.4);
  auto free_rider = Client("free");
  capped->declare_queue("q.x", {});
  free_rider->declare_queue("q.x", {});
  capped->publish("q.x", text_message("q.x", "only"));
  EXPECT_THROW(capped->publish("q.x", text_message("q.x", "nope")),
               mq::QuotaError);
  // The other tenant's identically-named queue is unaffected.
  for (int i = 0; i < 16; ++i) {
    free_rider->publish("q.x", text_message("q.x", "m" + std::to_string(i)));
  }
  EXPECT_EQ(free_rider->get_batch("q.x", 16, 1.0).size(), 16u);
  capped->close();
  free_rider->close();
}

// ------------------------------------------------------- fairness smoke

TEST_F(TenantLoopbackTest, FloodingTenantDoesNotStarveAnother) {
  // A flooder saturating the daemon with large batches while a light
  // tenant runs sequential round trips: the light tenant's requests keep
  // being served (DRR interleaves the two input streams). This is the
  // smoke version of the bench_tenant_fairness gate.
  auto flooder = Client("flood");
  auto light = Client("light");
  flooder->declare_queue("q.f", {});
  light->declare_queue("q.l", {});

  std::atomic<bool> stop{false};
  std::thread flood_thread([&] {
    while (!stop.load()) {
      std::vector<mq::Message> batch;
      for (int i = 0; i < 128; ++i) {
        batch.push_back(text_message("q.f", std::string(1024, 'f')));
      }
      flooder->publish_batch("q.f", std::move(batch));
      // Keep the backlog bounded so the test's memory stays flat.
      auto got = flooder->get_batch("q.f", 128, 0.0);
      std::vector<std::uint64_t> tags;
      for (const auto& d : got) tags.push_back(d.delivery_tag);
      if (!tags.empty()) flooder->ack_batch("q.f", tags);
    }
  });

  int completed = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (int i = 0; i < 40 && std::chrono::steady_clock::now() < deadline;
       ++i) {
    light->publish("q.l", text_message("q.l", "ping" + std::to_string(i)));
    auto d = light->get("q.l", 2.0);
    if (!d.has_value()) break;
    if (!light->ack("q.l", d->delivery_tag)) break;
    ++completed;
  }
  stop.store(true);
  flood_thread.join();
  // Under DRR the light tenant's tiny frames always fit a quantum; it
  // must complete its whole loop while the flood runs.
  EXPECT_EQ(completed, 40);
  flooder->close();
  light->close();
}

// ------------------------------------------------------------ accept cap

TEST_F(TenantLoopbackTest, MaxConnectionsRefusedWithErrorFrame) {
  max_connections_ = 2;
  if (server_) server_->stop();
  if (broker_) broker_->close();
  StartServer();

  auto c1 = Client("");
  auto c2 = Client("");
  c1->declare_queue("q.a", {});  // both fully served
  c2->declare_queue("q.b", {});

  // The third connection is accepted at the TCP level but refused with a
  // clean kError frame before any request is served.
  RawConn raw(server_->endpoint());
  auto refusal = raw.recv_frame();
  ASSERT_TRUE(refusal.has_value());
  EXPECT_EQ(refusal->op, net::Op::kError);
  EXPECT_NE(refusal->body.find("capacity"), std::string::npos);
  EXPECT_EQ(server_->rejected_at_capacity(), 1u);

  // Capacity frees when a connection leaves.
  c2->close();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server_->connection_count() >= 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  auto c3 = Client("");
  c3->declare_queue("q.c", {});
  EXPECT_TRUE(broker_->has_queue("q.c"));
  c3->close();
  c1->close();
}

// ------------------------------------------------- journal partitioning

TEST(TenantJournal, PartitionsJournalPerTenantAndRecovers) {
  const std::string dir = fresh_dir();
  const std::string journal_path = dir + "/part.journal";
  {
    mq::Broker broker("part", dir, {}, 1);
    broker.declare_queue("q.shared", {.durable = true});
    broker.declare_queue(mq::qualify_queue("app1", "q.shared"),
                         {.durable = true});
    broker.declare_queue(mq::qualify_queue("app2", "q.shared"),
                         {.durable = true});
    broker.publish("q.shared", text_message("q.shared", "default-msg"));
    broker.publish("t.app1/q.shared",
                   text_message("q.shared", "app1-msg"));
    broker.publish("t.app2/q.shared",
                   text_message("q.shared", "app2-msg"));
    broker.close();
  }
  // The layout is partitioned: one journal per tenant directory.
  EXPECT_TRUE(std::filesystem::exists(journal_path));
  EXPECT_TRUE(std::filesystem::exists(dir + "/app1/part.journal"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/app2/part.journal"));

  // Layout-aware recovery replays the default journal AND every tenant
  // partition beside it.
  mq::Broker recovered("recovered");
  EXPECT_EQ(recovered.recover(journal_path), 3u);
  auto d0 = recovered.get("q.shared", 0.1);
  ASSERT_TRUE(d0.has_value());
  EXPECT_EQ(text_of(*d0), "default-msg");
  auto d1 = recovered.get("t.app1/q.shared", 0.1);
  ASSERT_TRUE(d1.has_value());
  EXPECT_EQ(text_of(*d1), "app1-msg");
  auto d2 = recovered.get("t.app2/q.shared", 0.1);
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(text_of(*d2), "app2-msg");
  recovered.close();
  std::filesystem::remove_all(dir);
}

TEST(TenantJournal, PartitionPathsAreShardAware) {
  const std::string dir = fresh_dir();
  mq::Broker broker("shardy", dir, {}, 4);
  EXPECT_EQ(broker.partition_journal_path("app", 0),
            dir + "/app/shardy.journal");
  EXPECT_EQ(broker.partition_journal_path("app", 2),
            dir + "/app/shardy.journal.2");
  broker.declare_queue(mq::qualify_queue("app", "q.d"), {.durable = true});
  broker.publish("t.app/q.d", text_message("q.d", "x"));
  broker.close();
  // Exactly the app partition directory appeared.
  EXPECT_TRUE(std::filesystem::is_directory(dir + "/app"));
  std::filesystem::remove_all(dir);
}

TEST(TenantJournal, RecoverySkipsNonTenantDirectories) {
  const std::string dir = fresh_dir();
  const std::string journal_path = dir + "/keep.journal";
  {
    mq::Broker broker("keep", dir, {}, 1);
    broker.declare_queue("q.live", {.durable = true});
    broker.publish("q.live", text_message("q.live", "live"));
    broker.declare_queue("t.app/q.live", {.durable = true});
    broker.publish("t.app/q.live", text_message("q.live", "app-live"));
    broker.close();
  }
  // An operator's stash beside the live tree — a directory no tenant id
  // could name (write-side partition dirs are always valid ids) holding a
  // same-basename journal — must not replay as phantom live messages.
  std::filesystem::create_directories(dir + "/.backup");
  {
    std::ofstream stash(dir + "/.backup/keep.journal");
    stash << R"({"op":"pub","q":"q.ghost","seq":999,"body":"boo"})" << "\n";
  }

  mq::Broker recovered("r3");
  // Only the real journal and the app partition replay: 2, not 3.
  EXPECT_EQ(recovered.recover(journal_path), 2u);
  EXPECT_FALSE(recovered.has_queue("q.ghost"));
  EXPECT_TRUE(recovered.has_queue("q.live"));
  EXPECT_TRUE(recovered.has_queue("t.app/q.live"));
  recovered.close();
  std::filesystem::remove_all(dir);
}

TEST(TenantJournal, AcksReplayAcrossPartitions) {
  const std::string dir = fresh_dir();
  const std::string journal_path = dir + "/ackpart.journal";
  {
    mq::Broker broker("ackpart", dir, {}, 1);
    broker.declare_queue("t.a/q", {.durable = true});
    broker.publish("t.a/q", text_message("q", "acked"));
    broker.publish("t.a/q", text_message("q", "kept"));
    auto d = broker.get("t.a/q", 0.1);
    ASSERT_TRUE(d.has_value());
    ASSERT_TRUE(broker.ack("t.a/q", d->delivery_tag));
    broker.close();
  }
  mq::Broker recovered("r2");
  // Only the unacked message survives the two-phase replay.
  EXPECT_EQ(recovered.recover(journal_path), 1u);
  auto d = recovered.get("t.a/q", 0.1);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(text_of(*d), "kept");
  recovered.close();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace entk
