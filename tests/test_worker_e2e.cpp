// End-to-end tests of the distributed execution plane: an entk_broker
// daemon, N entk_worker daemons and an entk_run --workers client, all real
// processes wired over TCP. The centerpiece is the kill/recovery run:
// SIGKILL one of three workers mid-execution and prove the ensemble still
// completes with every task DONE exactly once in the state store
// (at-least-once delivery + manager-side dedup). Binary paths are injected
// by CMake as ENTK_RUN_BINARY / ENTK_BROKER_BINARY / ENTK_WORKER_BINARY.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.hpp"
#include "src/core/state_store.hpp"

#ifndef ENTK_RUN_BINARY
#define ENTK_RUN_BINARY "entk_run"
#endif
#ifndef ENTK_BROKER_BINARY
#define ENTK_BROKER_BINARY "entk_broker"
#endif
#ifndef ENTK_WORKER_BINARY
#define ENTK_WORKER_BINARY "entk_worker"
#endif

namespace {

std::string write_workflow(const std::string& body) {
  const std::string path = ::testing::TempDir() + "/wf_worker_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(entk::wall_now_us()) + ".json";
  std::ofstream out(path);
  out << body;
  return path;
}

/// Run entk_run, capturing stdout (stderr discarded). Returns the exit
/// code, -1 on abnormal termination.
int run_tool_capture(const std::string& args, std::string* output) {
  const std::string cmd = std::string(ENTK_RUN_BINARY) + " " + args + " 2>/dev/null";
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return -1;
  char buf[512];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) *output += buf;
  const int status = ::pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Forks a daemon binary with its stdout on a pipe and scans for a marker
/// line before returning (the daemons print a stable "listening on" /
/// "serving" line once ready).
class DaemonProc {
 public:
  DaemonProc(const char* binary, std::vector<std::string> args,
             const char* ready_marker) {
    int out[2];
    if (::pipe(out) != 0) return;
    pid_ = ::fork();
    if (pid_ == 0) {
      ::dup2(out[1], STDOUT_FILENO);
      ::close(out[0]);
      ::close(out[1]);
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(binary));
      for (auto& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(binary, argv.data());
      ::_exit(127);
    }
    ::close(out[1]);
    stdout_ = ::fdopen(out[0], "r");
    char line[256] = {0};
    while (stdout_ != nullptr && std::fgets(line, sizeof line, stdout_)) {
      ready_line_ = line;
      if (std::strstr(line, ready_marker) != nullptr) break;
    }
  }

  ~DaemonProc() { kill_hard(); }

  const std::string& ready_line() const { return ready_line_; }

  /// SIGTERM (graceful drain) and return the exit code, -1 on signals.
  int terminate() {
    if (pid_ <= 0) return -1;
    ::kill(pid_, SIGTERM);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  /// SIGKILL: a crash — no drain, in-flight deliveries die with the
  /// process and only the broker's disconnect-requeue can save them.
  void kill_hard() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
    if (stdout_ != nullptr) {
      std::fclose(stdout_);
      stdout_ = nullptr;
    }
  }

 private:
  pid_t pid_ = -1;
  std::FILE* stdout_ = nullptr;
  std::string ready_line_;
};

/// entk_broker on an ephemeral port.
class BrokerDaemon : public DaemonProc {
 public:
  explicit BrokerDaemon(std::vector<std::string> extra = {})
      : DaemonProc(ENTK_BROKER_BINARY, build_args(std::move(extra)),
                   "listening on") {
    const char* colon = std::strrchr(ready_line().c_str(), ':');
    if (colon != nullptr) port_ = std::atoi(colon + 1);
  }

  int port() const { return port_; }
  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(port_);
  }

 private:
  static std::vector<std::string> build_args(std::vector<std::string> extra) {
    std::vector<std::string> args = {"--port", "0"};
    for (auto& e : extra) args.push_back(std::move(e));
    return args;
  }

  int port_ = 0;
};

/// entk_worker connected to a broker endpoint.
class WorkerDaemon : public DaemonProc {
 public:
  WorkerDaemon(const std::string& endpoint, const std::string& worker_id,
               std::vector<std::string> extra = {})
      : DaemonProc(ENTK_WORKER_BINARY,
                   build_args(endpoint, worker_id, std::move(extra)),
                   "serving") {}

 private:
  static std::vector<std::string> build_args(const std::string& endpoint,
                                             const std::string& worker_id,
                                             std::vector<std::string> extra) {
    std::vector<std::string> args = {"--broker", endpoint,  //
                                     "--worker-id", worker_id};
    for (auto& e : extra) args.push_back(std::move(e));
    return args;
  }
};

std::string sleep_stage_workflow(int tasks, double duration_virtual_s) {
  std::string tasks_json;
  for (int i = 0; i < tasks; ++i) {
    if (i > 0) tasks_json += ",";
    tasks_json += R"({"name": "t)" + std::to_string(i) +
                  R"(", "executable": "sleep", "duration_s": )" +
                  std::to_string(duration_virtual_s) + "}";
  }
  return R"({
    "resource": {"resource": "local.localhost", "cpus": 8,
                 "clock_scale": 0.001},
    "pipelines": [
      {"name": "p", "stages": [{"name": "s", "tasks": [)" +
         tasks_json + R"(]}]}
    ]
  })";
}

TEST(WorkerE2e, SingleWorkerDrainsEnsembleAndExitsOnSigterm) {
  BrokerDaemon broker;
  ASSERT_GT(broker.port(), 0) << "broker did not report a listening port";
  WorkerDaemon worker(broker.endpoint(), "w_solo",
                      {"--cores", "2", "--clock-scale", "0.001"});
  ASSERT_NE(worker.ready_line().find("w_solo"), std::string::npos)
      << "worker did not come up: " << worker.ready_line();

  const std::string path =
      write_workflow(sleep_stage_workflow(4, /*duration_virtual_s=*/50));
  std::string output;
  const int code = run_tool_capture(
      path + " --broker " + broker.endpoint() + " --workers", &output);
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("4 done, 0 failed"), std::string::npos) << output;
  EXPECT_NE(output.find("DONE"), std::string::npos) << output;

  EXPECT_EQ(worker.terminate(), 0);  // graceful drain on SIGTERM
  EXPECT_EQ(broker.terminate(), 0);
}

TEST(WorkerE2e, SigkilledWorkerLosesNoTasksAcrossThreeWorkers) {
  // The ISSUE's proof scenario: three workers drain one ensemble; one is
  // SIGKILLed while its units are mid-execution. Its unacked Pending
  // deliveries ride the broker's disconnect-requeue to the survivors, and
  // the run still completes every task exactly once.
  const std::string journal_dir = ::testing::TempDir() + "/worker_e2e_" +
                                  std::to_string(::getpid()) + "_" +
                                  std::to_string(entk::wall_now_us());
  std::filesystem::create_directories(journal_dir);

  BrokerDaemon broker;
  ASSERT_GT(broker.port(), 0) << "broker did not report a listening port";
  const std::vector<std::string> worker_flags = {
      "--cores", "2", "--clock-scale", "0.001", "--max-in-flight", "2"};
  WorkerDaemon w1(broker.endpoint(), "w1", worker_flags);
  WorkerDaemon w2(broker.endpoint(), "w2", worker_flags);
  WorkerDaemon w3(broker.endpoint(), "w3", worker_flags);
  ASSERT_NE(w1.ready_line().find("serving"), std::string::npos);
  ASSERT_NE(w2.ready_line().find("serving"), std::string::npos);
  ASSERT_NE(w3.ready_line().find("serving"), std::string::npos);

  // 12 tasks x 2000 virtual s = 2 s wall each at clock-scale 1e-3: long
  // enough that the kill below lands mid-execution, with w2 holding
  // unacked claims.
  const std::string path =
      write_workflow(sleep_stage_workflow(12, /*duration_virtual_s=*/2000));

  std::string output;
  int code = -1;
  std::thread run([&] {
    code = run_tool_capture(path + " --broker " + broker.endpoint() +
                                " --workers --journal-dir " + journal_dir,
                            &output);
  });
  // Let the first wave of units land on the workers, then crash one.
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  w2.kill_hard();
  run.join();

  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("12 done, 0 failed"), std::string::npos) << output;
  EXPECT_NE(output.find("DONE"), std::string::npos) << output;

  // Exactly-once in the transactional state store: replay the run's
  // journal and count task DONE transitions — one per task, no more, even
  // though execution was at-least-once.
  std::string states_journal;
  for (const auto& entry : std::filesystem::directory_iterator(journal_dir)) {
    if (entry.path().extension() == ".states") {
      states_journal = entry.path().string();
    }
  }
  ASSERT_FALSE(states_journal.empty())
      << "no state-store journal in " << journal_dir;
  entk::StateStore replay;
  ASSERT_GT(replay.recover(states_journal), 0u);
  std::map<std::string, int> done_per_task;
  for (const entk::StateTransaction& tx : replay.history()) {
    if (tx.kind == "task" && tx.to_state == "DONE") ++done_per_task[tx.uid];
  }
  EXPECT_EQ(done_per_task.size(), 12u);
  for (const auto& [uid, count] : done_per_task) {
    EXPECT_EQ(count, 1) << uid << " reached DONE " << count << " times";
  }

  EXPECT_EQ(w1.terminate(), 0);
  EXPECT_EQ(w3.terminate(), 0);
  EXPECT_EQ(broker.terminate(), 0);
  std::filesystem::remove_all(journal_dir);
}

TEST(WorkerE2e, WorkerFlagValidationRejectsGarbage) {
  // Strict numeric parsing: garbage or negative values must fail fast
  // with usage (exit 2), not be silently read as 0.
  const std::vector<std::string> bad = {
      "--broker 127.0.0.1:1 --cores x4",
      "--broker 127.0.0.1:1 --cores -2",
      "--broker 127.0.0.1:1 --clock-scale abc",
      "--broker 127.0.0.1:1 --max-in-flight -1",
      "--broker 127.0.0.1:1 --batch 0",
      "",  // --broker is required
  };
  for (const std::string& args : bad) {
    const std::string cmd =
        std::string(ENTK_WORKER_BINARY) + " " + args + " > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    EXPECT_EQ(code, 2) << "entk_worker " << args;
  }
  const std::vector<std::string> bad_broker = {
      "--shards x4", "--shards -1", "--port 99999",
      "--worker-ttl -1", "--stats-interval nope",
  };
  for (const std::string& args : bad_broker) {
    const std::string cmd =
        std::string(ENTK_BROKER_BINARY) + " " + args + " > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    EXPECT_EQ(code, 2) << "entk_broker " << args;
  }
}

}  // namespace
