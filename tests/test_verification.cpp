// Tests for the probabilistic-forecast verification metrics and their
// application to AnEn ensembles.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/anen/anen.hpp"
#include "src/anen/verification.hpp"
#include "src/common/error.hpp"

namespace entk::anen {
namespace {

TEST(Crps, SingleMemberReducesToAbsoluteError) {
  EXPECT_DOUBLE_EQ(crps({3.0}, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(crps({5.0}, 5.0), 0.0);
}

TEST(Crps, PerfectDeterministicEnsembleScoresZero) {
  EXPECT_DOUBLE_EQ(crps({7.0, 7.0, 7.0}, 7.0), 0.0);
}

TEST(Crps, SpreadIsRewardedUnderUncertainty) {
  // The observation is far from the (wrong) ensemble center: an ensemble
  // spread toward the observation scores better than a tight wrong one.
  const double obs = 4.0;
  const double tight = crps({0.0, 0.1, -0.1}, obs);
  const double spread = crps({0.0, 2.0, -2.0, 4.0, -4.0}, obs);
  EXPECT_LT(spread, tight);
}

TEST(Crps, NonNegativeAndTranslationInvariant) {
  std::mt19937_64 rng(5);
  std::normal_distribution<double> dist(0.0, 1.0);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> ensemble;
    for (int i = 0; i < 9; ++i) ensemble.push_back(dist(rng));
    const double obs = dist(rng);
    const double score = crps(ensemble, obs);
    EXPECT_GE(score, 0.0);
    std::vector<double> shifted = ensemble;
    for (double& x : shifted) x += 100.0;
    EXPECT_NEAR(crps(shifted, obs + 100.0), score, 1e-9);
  }
}

TEST(Crps, EmptyEnsembleThrows) {
  EXPECT_THROW(crps({}, 1.0), ValueError);
  EXPECT_THROW(mean_crps({}, {}), ValueError);
  EXPECT_THROW(mean_crps({{1.0}}, {1.0, 2.0}), ValueError);
}

TEST(RankHistogram, CalibratedEnsembleIsRoughlyFlat) {
  // Observation drawn from the same distribution as the members: every
  // rank equally likely.
  std::mt19937_64 rng(11);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<std::vector<double>> ensembles;
  std::vector<double> observations;
  constexpr int kCases = 4000;
  constexpr int kMembers = 4;
  for (int c = 0; c < kCases; ++c) {
    std::vector<double> e;
    for (int i = 0; i < kMembers; ++i) e.push_back(dist(rng));
    ensembles.push_back(std::move(e));
    observations.push_back(dist(rng));
  }
  const std::vector<int> counts = rank_histogram(ensembles, observations);
  ASSERT_EQ(counts.size(), static_cast<std::size_t>(kMembers + 1));
  const double expected = kCases / static_cast<double>(kMembers + 1);
  for (int c : counts) {
    EXPECT_NEAR(c, expected, 0.25 * expected);
  }
}

TEST(RankHistogram, BiasedEnsemblePilesIntoOneTail) {
  // Members systematically above the observation: observation always
  // ranks lowest.
  std::vector<std::vector<double>> ensembles(100, {5.0, 6.0, 7.0});
  std::vector<double> observations(100, 1.0);
  const std::vector<int> counts = rank_histogram(ensembles, observations);
  EXPECT_EQ(counts[0], 100);
  for (std::size_t r = 1; r < counts.size(); ++r) EXPECT_EQ(counts[r], 0);
}

TEST(RankHistogram, RaggedEnsemblesRejected) {
  EXPECT_THROW(rank_histogram({{1.0, 2.0}, {1.0}}, {0.5, 0.5}), ValueError);
}

TEST(SpreadSkillTest, ReliableEnsembleHasRatioNearOne) {
  std::mt19937_64 rng(23);
  std::normal_distribution<double> dist(0.0, 2.0);
  std::vector<std::vector<double>> ensembles;
  std::vector<double> observations;
  for (int c = 0; c < 3000; ++c) {
    const double truth_mean = dist(rng);
    std::vector<double> e;
    for (int i = 0; i < 10; ++i) e.push_back(truth_mean + dist(rng));
    ensembles.push_back(std::move(e));
    observations.push_back(truth_mean + dist(rng));
  }
  const SpreadSkill ss = spread_skill(ensembles, observations);
  EXPECT_GT(ss.mean_spread, 0.0);
  EXPECT_GT(ss.rmse, 0.0);
  EXPECT_NEAR(ss.ratio, 1.0, 0.15);
}

TEST(SpreadSkillTest, OverconfidentEnsembleHasLowRatio) {
  std::mt19937_64 rng(29);
  std::normal_distribution<double> err(0.0, 2.0);
  std::normal_distribution<double> tiny(0.0, 0.1);
  std::vector<std::vector<double>> ensembles;
  std::vector<double> observations;
  for (int c = 0; c < 500; ++c) {
    std::vector<double> e;
    const double center = err(rng);
    for (int i = 0; i < 8; ++i) e.push_back(center + tiny(rng));
    ensembles.push_back(std::move(e));
    observations.push_back(err(rng));
  }
  const SpreadSkill ss = spread_skill(ensembles, observations);
  EXPECT_LT(ss.ratio, 0.3);
}

TEST(AnEnVerification, EnsembleValuesMatchAnalogDays) {
  DomainSpec d;
  d.width = 48;
  d.height = 48;
  d.history_days = 50;
  d.variables = 3;
  ForecastArchive archive(d);
  AnEnConfig cfg;
  const AnalogPrediction p =
      compute_analogs(archive, cfg, d.history_days, 10, 10);
  const std::vector<double> values =
      analog_ensemble_values(archive, p, 10, 10);
  ASSERT_EQ(values.size(), p.analog_days.size());
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  EXPECT_NEAR(mean, p.value, 1e-9);
}

TEST(AnEnVerification, AnEnBeatsClimatologyOnCrps) {
  // The analog ensemble's probabilistic skill, not just its mean, should
  // beat a climatological ensemble (random historical days).
  DomainSpec d;
  d.width = 64;
  d.height = 64;
  d.history_days = 60;
  d.variables = 3;
  ForecastArchive archive(d);
  AnEnConfig cfg;
  std::mt19937_64 rng(31);
  std::uniform_int_distribution<int> day_dist(1, d.history_days - 2);

  std::vector<std::vector<double>> anen_ens, clim_ens;
  std::vector<double> observations;
  for (int x = 6; x < 60; x += 7) {
    for (int y = 6; y < 60; y += 7) {
      const AnalogPrediction p =
          compute_analogs(archive, cfg, d.history_days, x, y);
      anen_ens.push_back(analog_ensemble_values(archive, p, x, y));
      std::vector<double> clim;
      for (int i = 0; i < cfg.analogs; ++i) {
        clim.push_back(archive.observation(day_dist(rng), x, y));
      }
      clim_ens.push_back(std::move(clim));
      observations.push_back(archive.observation(d.history_days, x, y));
    }
  }
  EXPECT_LT(mean_crps(anen_ens, observations),
            mean_crps(clim_ens, observations));
}

}  // namespace
}  // namespace entk::anen
