// Direct tests of the RTS Agent's discrete-event execution machinery:
// staging timelines, dispatch-rate serialization, environment setup,
// placement semantics, worker pool, and process execution helpers.
#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>

#include "src/rts/agent.hpp"
#include "src/rts/process.hpp"

namespace entk::rts {
namespace {

/// Harness wiring an Agent to an in-process broker with direct access to
/// its queues.
class AgentHarness {
 public:
  explicit AgentHarness(AgentConfig config, int nodes = 4,
                        int cores_per_node = 8,
                        sim::FailureSpec failure = {},
                        double clock_scale = 1e-4)
      : clock_(std::make_shared<ScaledClock>(clock_scale)),
        profiler_(std::make_shared<Profiler>()),
        broker_(std::make_shared<mq::Broker>("agent_test")),
        node_map_(nodes, cores_per_node, 0),
        filesystem_(sim::FilesystemSpec{}),
        failure_model_(failure),
        registry_(std::make_shared<UnitRegistry>()) {
    broker_->declare_queue("in");
    broker_->declare_queue("out");
    agent_ = std::make_unique<Agent>(
        "agent", config, &node_map_, &filesystem_, &failure_model_,
        /*compute_factor=*/1.0, clock_, profiler_, broker_, "in", "out",
        registry_);
    agent_->start();
  }

  ~AgentHarness() {
    if (agent_) agent_->kill();
    broker_->close();
  }

  void submit(TaskUnit unit) {
    const json::Value wire = unit.to_json();
    registry_->put(std::move(unit));
    broker_->publish("in", mq::Message::json_body("in", wire));
  }

  std::vector<UnitResult> collect(std::size_t n, double timeout_s = 10.0) {
    std::vector<UnitResult> results;
    const double deadline = wall_now_s() + timeout_s;
    while (results.size() < n && wall_now_s() < deadline) {
      auto d = broker_->get("out", 0.01);
      if (!d) continue;
      broker_->ack("out", d->delivery_tag);
      results.push_back(UnitResult::from_json(d->message.body_json()));
    }
    return results;
  }

  Agent& agent() { return *agent_; }
  sim::NodeMap& node_map() { return node_map_; }
  ClockPtr clock() { return clock_; }
  ProfilerPtr profiler() { return profiler_; }

 private:
  ClockPtr clock_;
  ProfilerPtr profiler_;
  mq::BrokerPtr broker_;
  sim::NodeMap node_map_;
  sim::SharedFilesystem filesystem_;
  sim::FailureModel failure_model_;
  std::shared_ptr<UnitRegistry> registry_;
  std::unique_ptr<Agent> agent_;
};

AgentConfig fast_agent() {
  AgentConfig cfg;
  cfg.env_setup_s = 1.0;
  cfg.dispatch_rate_per_s = 1000;
  return cfg;
}

TaskUnit unit_of(const std::string& uid, double duration, int cores = 1) {
  TaskUnit u;
  u.uid = uid;
  u.name = uid;
  u.executable = "sleep";
  u.duration_s = duration;
  u.cores = cores;
  return u;
}

TEST(AgentExec, EnvSetupIsChargedPerUnit) {
  AgentConfig cfg = fast_agent();
  cfg.env_setup_s = 3.0;
  AgentHarness h(cfg);
  h.submit(unit_of("u0", 10.0));
  auto results = h.collect(1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NEAR(results[0].exec_end_t - results[0].exec_start_t, 13.0, 0.5);
}

TEST(AgentExec, DispatchRateSerializesStarts) {
  AgentConfig cfg = fast_agent();
  cfg.dispatch_rate_per_s = 10.0;  // one start per 0.1 virtual s
  AgentHarness h(cfg);
  for (int i = 0; i < 8; ++i) h.submit(unit_of("u" + std::to_string(i), 5.0));
  auto results = h.collect(8);
  ASSERT_EQ(results.size(), 8u);
  double min_start = 1e18, max_start = -1e18;
  for (const UnitResult& r : results) {
    min_start = std::min(min_start, r.exec_start_t);
    max_start = std::max(max_start, r.exec_start_t);
  }
  // 8 units at 10/s: the last starts >= 0.7 virtual s after the first.
  EXPECT_GE(max_start - min_start, 0.69);
}

TEST(AgentExec, SequentialStagerSerializesInputStaging) {
  AgentConfig cfg = fast_agent();
  cfg.stager_workers = 1;
  AgentHarness h(cfg);
  // Each unit stages 10 MB at the default 500 MB/s: 25 ms each (+latency).
  for (int i = 0; i < 4; ++i) {
    TaskUnit u = unit_of("u" + std::to_string(i), 1.0);
    u.input_staging.push_back(
        {"in", "sandbox/", saga::StagingAction::Copy, 10'000'000});
    h.submit(std::move(u));
  }
  auto results = h.collect(4);
  ASSERT_EQ(results.size(), 4u);
  double sum = 0;
  for (const UnitResult& r : results) sum += r.staging_in_s;
  EXPECT_NEAR(sum, 4 * (0.005 + 0.02), 0.02);

  // One stager: the four staging windows must be pairwise disjoint on the
  // virtual timeline (sequential staging — the Fig 8 linear-growth cause).
  struct Window {
    double start = -1, stop = -1;
  };
  std::map<std::string, Window> windows;
  for (const ProfileEvent& e : h.profiler()->events()) {
    if (e.event == "unit_stage_in_start") windows[e.uid].start = e.virtual_s;
    if (e.event == "unit_stage_in_stop") windows[e.uid].stop = e.virtual_s;
  }
  ASSERT_EQ(windows.size(), 4u);
  std::vector<Window> sorted;
  for (const auto& [uid, w] : windows) {
    (void)uid;
    ASSERT_GE(w.start, 0.0);
    ASSERT_GT(w.stop, w.start);
    sorted.push_back(w);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Window& a, const Window& b) { return a.start < b.start; });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_GE(sorted[i].start, sorted[i - 1].stop - 1e-9);
  }
}

TEST(AgentExec, ParallelStagersOverlapStaging) {
  AgentConfig serial = fast_agent();
  serial.stager_workers = 1;
  AgentConfig parallel = fast_agent();
  parallel.stager_workers = 4;

  auto run = [](AgentConfig cfg) {
    // Slower clock (1 ms wall = 1 virtual s): OS scheduling jitter stays
    // small against the multi-second staging charges being compared.
    AgentHarness h(cfg, 4, 8, {}, 1e-3);
    for (int i = 0; i < 4; ++i) {
      TaskUnit u;
      u.uid = "u" + std::to_string(i);
      u.duration_s = 1.0;
      // 2 GB each (~4 s virtual at 500 MB/s): staging dominates arrival
      // jitter, so the stager count is what decides the makespan.
      u.input_staging.push_back(
          {"in", "sandbox/", saga::StagingAction::Copy, 2'000'000'000});
      h.submit(std::move(u));
    }
    auto results = h.collect(4);
    double last_end = 0;
    for (const UnitResult& r : results) {
      last_end = std::max(last_end, r.exec_end_t);
    }
    return last_end;
  };
  // Serial: ~4 x 4 s of staging backlog; 4 stagers overlap it entirely.
  EXPECT_LT(run(parallel) + 5.0, run(serial));
}

TEST(AgentExec, HeadOfLineBlockingPreservesFifo) {
  // A wide unit blocks the queue head; later narrow units must NOT jump
  // ahead (FIFO agent scheduler).
  AgentHarness h(fast_agent(), /*nodes=*/1, /*cores_per_node=*/4);
  h.submit(unit_of("occupier", 50.0, 4));   // fills the machine
  h.submit(unit_of("wide", 30.0, 4));       // must wait for occupier
  h.submit(unit_of("narrow", 5.0, 1));      // could fit, but FIFO says wait
  auto results = h.collect(3, 20.0);
  ASSERT_EQ(results.size(), 3u);
  double wide_start = -1, narrow_start = -1;
  for (const UnitResult& r : results) {
    if (r.uid == "wide") wide_start = r.exec_start_t;
    if (r.uid == "narrow") narrow_start = r.exec_start_t;
  }
  EXPECT_GE(narrow_start, wide_start);
}

TEST(AgentExec, GeneratinalExecutionWhenOversubscribed) {
  AgentHarness h(fast_agent(), /*nodes=*/1, /*cores_per_node=*/2);
  for (int i = 0; i < 6; ++i) h.submit(unit_of("u" + std::to_string(i), 10.0));
  auto results = h.collect(6, 20.0);
  ASSERT_EQ(results.size(), 6u);
  double first_start = 1e18, last_end = 0;
  for (const UnitResult& r : results) {
    first_start = std::min(first_start, r.exec_start_t);
    last_end = std::max(last_end, r.exec_end_t);
  }
  // 6 tasks, 2 cores: 3 generations of (1 + 10) virtual seconds.
  EXPECT_GE(last_end - first_start, 3 * 11.0 - 1.0);
}

TEST(AgentExec, StopCancelsUnplacedUnits) {
  AgentHarness h(fast_agent(), /*nodes=*/1, /*cores_per_node=*/1);
  h.submit(unit_of("running", 2000.0, 1));
  h.submit(unit_of("waiting", 2000.0, 1));
  // Give the agent time to place the first unit.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread stopper([&h] { h.agent().stop(); });
  auto results = h.collect(2, 10.0);
  stopper.join();
  ASSERT_EQ(results.size(), 2u);
  int canceled = 0, done = 0;
  for (const UnitResult& r : results) {
    if (r.outcome == UnitOutcome::Canceled) ++canceled;
    if (r.outcome == UnitOutcome::Done) ++done;
  }
  EXPECT_EQ(canceled, 1);  // the waiting unit
  EXPECT_EQ(done, 1);      // the running unit drains
}

TEST(AgentExec, ReleasedCoresAreReusable) {
  AgentHarness h(fast_agent(), /*nodes=*/1, /*cores_per_node=*/4);
  for (int i = 0; i < 8; ++i) h.submit(unit_of("u" + std::to_string(i), 2.0, 2));
  auto results = h.collect(8);
  ASSERT_EQ(results.size(), 8u);
  EXPECT_EQ(h.node_map().stats().used_cores, 0);
  EXPECT_EQ(h.agent().completed(), 8u);
}

TEST(AgentExec, MetadataRoundTripsThroughResults) {
  AgentHarness h(fast_agent());
  TaskUnit u = unit_of("meta", 1.0);
  u.metadata["experiment"] = "fig10";
  u.metadata["index"] = 7;
  h.submit(std::move(u));
  auto results = h.collect(1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].metadata.at("experiment").as_string(), "fig10");
  EXPECT_EQ(results[0].metadata.at("index").as_int(), 7);
}

TEST(UnitRegistryTest, TakeRemovesAndFallsBackToWire) {
  UnitRegistry registry;
  TaskUnit u = unit_of("u1", 5.0);
  u.callable = [] { return 0; };
  const json::Value wire = u.to_json();
  registry.put(std::move(u));
  EXPECT_EQ(registry.size(), 1u);
  TaskUnit taken = registry.take("u1", wire);
  EXPECT_TRUE(static_cast<bool>(taken.callable));  // preserved in-process
  EXPECT_EQ(registry.size(), 0u);
  // Second take falls back to wire deserialization: callable lost.
  TaskUnit fallback = registry.take("u1", wire);
  EXPECT_FALSE(static_cast<bool>(fallback.callable));
  EXPECT_DOUBLE_EQ(fallback.duration_s, 5.0);
}

TEST(ProcessExec, SpawnablePredicate) {
  EXPECT_TRUE(is_spawnable("/bin/true"));
  EXPECT_FALSE(is_spawnable("sleep"));
  EXPECT_FALSE(is_spawnable(""));
}

TEST(ProcessExec, RunsRealProcessesAndReportsExitCodes) {
  EXPECT_EQ(run_process("/bin/true", {}), 0);
  EXPECT_EQ(run_process("/bin/false", {}), 1);
  EXPECT_EQ(run_process("/bin/sh", {"-c", "exit 42"}), 42);
  EXPECT_EQ(run_process("/nonexistent/program", {}), 127);
}

}  // namespace
}  // namespace entk::rts
