// Direct component tests of the WFProcessor: Enqueue/Dequeue driven
// through raw broker queues, without an RTS — the component's contract in
// isolation (paper Fig 2, messages 1 and 5).
#include <gtest/gtest.h>

#include <thread>

#include "src/core/state_store.hpp"
#include "src/core/wfprocessor.hpp"

namespace entk {
namespace {

/// Fixture wiring a WFProcessor to a broker plus a live Synchronizer, with
/// the test driving the Pending (out) and Done (in) queues by hand.
class WfpFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_shared<mq::Broker>("wfp_test");
    broker_->declare_queue("q.pending");
    broker_->declare_queue("q.completed");
    broker_->declare_queue("q.states");
    profiler_ = std::make_shared<Profiler>();
    synchronizer_ = std::make_unique<Synchronizer>(
        broker_, "q.states", &registry_, &store_, profiler_);
    synchronizer_->start();
  }

  void TearDown() override {
    if (wfp_) wfp_->stop();
    synchronizer_->stop();
    broker_->close();
  }

  void start_wfp(WfConfig cfg = {}) {
    wfp_ = std::make_unique<WFProcessor>(cfg, broker_, &registry_,
                                         "q.pending", "q.completed",
                                         "q.states", profiler_);
    wfp_->start();
  }

  PipelinePtr make_app(int stages, int tasks) {
    auto pipeline = std::make_shared<Pipeline>("p");
    for (int s = 0; s < stages; ++s) {
      auto stage = std::make_shared<Stage>("s" + std::to_string(s));
      for (int t = 0; t < tasks; ++t) {
        auto task = std::make_shared<Task>("t");
        task->duration_s = 1.0;
        stage->add_task(task);
      }
      pipeline->add_stage(stage);
    }
    registry_.add_pipeline(pipeline);
    return pipeline;
  }

  /// Pop one pending-task uid (waits up to a second).
  std::string pop_pending() {
    auto d = broker_->get("q.pending", 1.0);
    if (!d) return "";
    broker_->ack("q.pending", d->delivery_tag);
    return d->message.body_json().get_string("uid", "");
  }

  /// Simulate the ExecManager+RTS side for one task: advance its states
  /// and push a completion message.
  void complete(const std::string& uid, const std::string& outcome,
                int exit_code = 0) {
    SyncClient sync(broker_, "fake_emgr", "q.states", "q.ack.fake");
    sync.sync(uid, "task", "SCHEDULED", "SUBMITTING", true);
    sync.sync(uid, "task", "SUBMITTING", "SUBMITTED", true);
    json::Value msg;
    msg["uid"] = uid;
    msg["outcome"] = outcome;
    msg["exit_code"] = exit_code;
    broker_->publish("q.completed",
                     mq::Message::json_body("q.completed", msg));
  }

  mq::BrokerPtr broker_;
  ObjectRegistry registry_;
  StateStore store_;
  ProfilerPtr profiler_;
  std::unique_ptr<Synchronizer> synchronizer_;
  std::unique_ptr<WFProcessor> wfp_;
};

TEST_F(WfpFixture, EnqueuePublishesAllTasksOfFirstStage) {
  PipelinePtr app = make_app(2, 3);
  start_wfp();
  std::set<std::string> uids;
  for (int i = 0; i < 3; ++i) {
    const std::string uid = pop_pending();
    EXPECT_FALSE(uid.empty());
    uids.insert(uid);
  }
  EXPECT_EQ(uids.size(), 3u);
  // Second stage must NOT be enqueued yet.
  EXPECT_TRUE(pop_pending().empty());
  EXPECT_EQ(app->stage_at(0)->state(), StageState::Scheduled);
  EXPECT_EQ(app->stage_at(1)->state(), StageState::Described);
  for (const TaskPtr& t : app->stage_at(0)->tasks()) {
    EXPECT_EQ(t->state(), TaskState::Scheduled);
  }
}

TEST_F(WfpFixture, CompletionsAdvanceStagesAndPipeline) {
  PipelinePtr app = make_app(2, 2);
  start_wfp();
  for (int i = 0; i < 2; ++i) complete(pop_pending(), "DONE");
  // Stage 2's tasks become pending only after stage 1 resolved.
  for (int i = 0; i < 2; ++i) {
    const std::string uid = pop_pending();
    ASSERT_FALSE(uid.empty());
    complete(uid, "DONE");
  }
  wfp_->wait_completion();
  EXPECT_EQ(app->state(), PipelineState::Done);
  EXPECT_EQ(wfp_->tasks_done(), 4u);
}

TEST_F(WfpFixture, FailureWithoutBudgetFailsPipeline) {
  PipelinePtr app = make_app(1, 1);
  start_wfp();
  complete(pop_pending(), "FAILED", 7);
  wfp_->wait_completion();
  EXPECT_EQ(app->state(), PipelineState::Failed);
  EXPECT_EQ(wfp_->tasks_failed(), 1u);
  EXPECT_EQ(app->stage_at(0)->tasks()[0]->exit_code(), 7);
}

TEST_F(WfpFixture, FailureWithBudgetReenqueues) {
  WfConfig cfg;
  cfg.default_task_retry_limit = 1;
  PipelinePtr app = make_app(1, 1);
  start_wfp(cfg);
  const std::string uid = pop_pending();
  complete(uid, "FAILED", 1);
  // The task comes back through the Pending queue.
  const std::string retry_uid = pop_pending();
  EXPECT_EQ(retry_uid, uid);
  complete(retry_uid, "DONE");
  wfp_->wait_completion();
  EXPECT_EQ(app->state(), PipelineState::Done);
  EXPECT_EQ(wfp_->resubmissions(), 1u);
}

TEST_F(WfpFixture, UnknownResultIsIgnored) {
  PipelinePtr app = make_app(1, 1);
  start_wfp();
  json::Value bogus;
  bogus["uid"] = "task.99999x";
  bogus["outcome"] = "DONE";
  broker_->publish("q.completed",
                   mq::Message::json_body("q.completed", bogus));
  // The real task still completes normally afterward.
  complete(pop_pending(), "DONE");
  wfp_->wait_completion();
  EXPECT_EQ(app->state(), PipelineState::Done);
}

TEST_F(WfpFixture, MalformedDoneMessageIsSkipped) {
  PipelinePtr app = make_app(1, 1);
  start_wfp();
  mq::Message junk;
  junk.body = "{this is not json";
  broker_->publish("q.completed", std::move(junk));
  complete(pop_pending(), "DONE");
  wfp_->wait_completion();
  EXPECT_EQ(app->state(), PipelineState::Done);
}

TEST_F(WfpFixture, AbortFailsAllLivePipelines) {
  PipelinePtr app = make_app(1, 2);
  start_wfp();
  pop_pending();
  pop_pending();
  wfp_->abort("test abort");
  wfp_->wait_completion();
  EXPECT_EQ(app->state(), PipelineState::Failed);
}

TEST_F(WfpFixture, StateJournalSeesEveryTransition) {
  PipelinePtr app = make_app(1, 1);
  start_wfp();
  const std::string uid = pop_pending();
  complete(uid, "DONE");
  wfp_->wait_completion();
  // DESCRIBED->SCHEDULING->SCHEDULED->SUBMITTING->SUBMITTED->EXECUTED->DONE
  int task_transitions = 0;
  for (const StateTransaction& t : store_.history()) {
    if (t.uid == uid) ++task_transitions;
  }
  EXPECT_EQ(task_transitions, 6);
  EXPECT_EQ(store_.state_of(uid), "DONE");
  EXPECT_EQ(store_.state_of(app->uid()), "DONE");
}

}  // namespace
}  // namespace entk
