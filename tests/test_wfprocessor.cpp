// Direct component tests of the WFProcessor: Enqueue/Dequeue driven
// through raw broker queues, without an RTS — the component's contract in
// isolation (paper Fig 2, messages 1 and 5).
#include <gtest/gtest.h>

#include <thread>

#include "src/core/state_store.hpp"
#include "src/core/wfprocessor.hpp"

namespace entk {
namespace {

/// Fixture wiring a WFProcessor to a broker plus a live Synchronizer, with
/// the test driving the Pending (out) and Done (in) queues by hand.
class WfpFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_shared<mq::Broker>("wfp_test");
    broker_->declare_queue("q.pending");
    broker_->declare_queue("q.completed");
    broker_->declare_queue("q.states");
    profiler_ = std::make_shared<Profiler>();
    synchronizer_ = std::make_unique<Synchronizer>(
        broker_, "q.states", &registry_, &store_, profiler_);
    synchronizer_->start();
  }

  void TearDown() override {
    if (wfp_) wfp_->stop();
    synchronizer_->stop();
    broker_->close();
  }

  void start_wfp(WfConfig cfg = {}) {
    wfp_ = std::make_unique<WFProcessor>(cfg, broker_, &registry_,
                                         "q.pending", "q.completed",
                                         "q.states", profiler_);
    wfp_->start();
  }

  PipelinePtr make_app(int stages, int tasks) {
    auto pipeline = std::make_shared<Pipeline>("p");
    for (int s = 0; s < stages; ++s) {
      auto stage = std::make_shared<Stage>("s" + std::to_string(s));
      for (int t = 0; t < tasks; ++t) {
        auto task = std::make_shared<Task>("t");
        task->duration_s = 1.0;
        stage->add_task(task);
      }
      pipeline->add_stage(stage);
    }
    registry_.add_pipeline(pipeline);
    return pipeline;
  }

  /// Pop one pending-task uid (waits up to a second).
  std::string pop_pending() {
    auto d = broker_->get("q.pending", 1.0);
    if (!d) return "";
    broker_->ack("q.pending", d->delivery_tag);
    return d->message.body_json().get_string("uid", "");
  }

  /// Simulate the ExecManager+RTS side for one task: advance its states
  /// and push a completion message.
  void complete(const std::string& uid, const std::string& outcome,
                int exit_code = 0) {
    SyncClient sync(broker_, "fake_emgr", "q.states", "q.ack.fake");
    sync.sync(uid, "task", "SCHEDULED", "SUBMITTING", true);
    sync.sync(uid, "task", "SUBMITTING", "SUBMITTED", true);
    json::Value msg;
    msg["uid"] = uid;
    msg["outcome"] = outcome;
    msg["exit_code"] = exit_code;
    broker_->publish("q.completed",
                     mq::Message::json_body("q.completed", msg));
  }

  mq::BrokerPtr broker_;
  ObjectRegistry registry_;
  StateStore store_;
  ProfilerPtr profiler_;
  std::unique_ptr<Synchronizer> synchronizer_;
  std::unique_ptr<WFProcessor> wfp_;
};

TEST_F(WfpFixture, EnqueuePublishesAllTasksOfFirstStage) {
  PipelinePtr app = make_app(2, 3);
  start_wfp();
  std::set<std::string> uids;
  for (int i = 0; i < 3; ++i) {
    const std::string uid = pop_pending();
    EXPECT_FALSE(uid.empty());
    uids.insert(uid);
  }
  EXPECT_EQ(uids.size(), 3u);
  // Second stage must NOT be enqueued yet.
  EXPECT_TRUE(pop_pending().empty());
  EXPECT_EQ(app->stage_at(0)->state(), StageState::Scheduled);
  EXPECT_EQ(app->stage_at(1)->state(), StageState::Described);
  for (const TaskPtr& t : app->stage_at(0)->tasks()) {
    EXPECT_EQ(t->state(), TaskState::Scheduled);
  }
}

TEST_F(WfpFixture, CompletionsAdvanceStagesAndPipeline) {
  PipelinePtr app = make_app(2, 2);
  start_wfp();
  for (int i = 0; i < 2; ++i) complete(pop_pending(), "DONE");
  // Stage 2's tasks become pending only after stage 1 resolved.
  for (int i = 0; i < 2; ++i) {
    const std::string uid = pop_pending();
    ASSERT_FALSE(uid.empty());
    complete(uid, "DONE");
  }
  wfp_->wait_completion();
  EXPECT_EQ(app->state(), PipelineState::Done);
  EXPECT_EQ(wfp_->tasks_done(), 4u);
}

TEST_F(WfpFixture, FailureWithoutBudgetFailsPipeline) {
  PipelinePtr app = make_app(1, 1);
  start_wfp();
  complete(pop_pending(), "FAILED", 7);
  wfp_->wait_completion();
  EXPECT_EQ(app->state(), PipelineState::Failed);
  EXPECT_EQ(wfp_->tasks_failed(), 1u);
  EXPECT_EQ(app->stage_at(0)->tasks()[0]->exit_code(), 7);
}

TEST_F(WfpFixture, FailureWithBudgetReenqueues) {
  WfConfig cfg;
  cfg.default_task_retry_limit = 1;
  PipelinePtr app = make_app(1, 1);
  start_wfp(cfg);
  const std::string uid = pop_pending();
  complete(uid, "FAILED", 1);
  // The task comes back through the Pending queue.
  const std::string retry_uid = pop_pending();
  EXPECT_EQ(retry_uid, uid);
  complete(retry_uid, "DONE");
  wfp_->wait_completion();
  EXPECT_EQ(app->state(), PipelineState::Done);
  EXPECT_EQ(wfp_->resubmissions(), 1u);
}

TEST_F(WfpFixture, UnknownResultIsIgnored) {
  PipelinePtr app = make_app(1, 1);
  start_wfp();
  json::Value bogus;
  bogus["uid"] = "task.99999x";
  bogus["outcome"] = "DONE";
  broker_->publish("q.completed",
                   mq::Message::json_body("q.completed", bogus));
  // The real task still completes normally afterward.
  complete(pop_pending(), "DONE");
  wfp_->wait_completion();
  EXPECT_EQ(app->state(), PipelineState::Done);
}

TEST_F(WfpFixture, MalformedDoneMessageIsSkipped) {
  PipelinePtr app = make_app(1, 1);
  start_wfp();
  mq::Message junk;
  junk.set_body("{this is not json");
  broker_->publish("q.completed", std::move(junk));
  complete(pop_pending(), "DONE");
  wfp_->wait_completion();
  EXPECT_EQ(app->state(), PipelineState::Done);
}

TEST_F(WfpFixture, AbortFailsAllLivePipelines) {
  PipelinePtr app = make_app(1, 2);
  start_wfp();
  pop_pending();
  pop_pending();
  wfp_->abort("test abort");
  wfp_->wait_completion();
  EXPECT_EQ(app->state(), PipelineState::Failed);
}

TEST_F(WfpFixture, BatchedEnqueueShipsBulkPendingAndCoalescedResults) {
  WfConfig cfg;
  cfg.batch_size = 16;
  PipelinePtr app = make_app(1, 16);
  start_wfp(cfg);

  // The whole stage travels as one bulk message: {"uids": [...]}.
  auto d = broker_->get("q.pending", 1.0);
  ASSERT_TRUE(d);
  broker_->ack("q.pending", d->delivery_tag);
  const json::Value msg = d->message.body_json();
  ASSERT_TRUE(msg.contains("uids"));
  std::vector<std::string> uids;
  for (const json::Value& u : msg.at("uids").as_array()) {
    uids.push_back(u.as_string());
  }
  ASSERT_EQ(uids.size(), 16u);
  EXPECT_FALSE(broker_->get("q.pending", 0.0).has_value());
  for (const TaskPtr& t : app->stage_at(0)->tasks()) {
    EXPECT_EQ(t->state(), TaskState::Scheduled);
  }

  // Emgr side: one vectored sync per transition kind, then a single
  // coalesced completion message covering all 16 tasks.
  SyncClient sync(broker_, "fake_emgr", "q.states", "q.ack.fake");
  std::vector<Transition> submitting, submitted;
  for (const std::string& uid : uids) {
    submitting.push_back({uid, "task", "SCHEDULED", "SUBMITTING"});
    submitted.push_back({uid, "task", "SUBMITTING", "SUBMITTED"});
  }
  EXPECT_TRUE(sync.sync_batch(submitting, true));
  EXPECT_TRUE(sync.sync_batch(submitted, true));
  json::Array results;
  for (const std::string& uid : uids) {
    json::Value r;
    r["uid"] = uid;
    r["outcome"] = "DONE";
    r["exit_code"] = 0;
    results.push_back(std::move(r));
  }
  json::Value done;
  done["results"] = std::move(results);
  broker_->publish("q.completed", mq::Message::json_body("q.completed", done));

  wfp_->wait_completion();
  EXPECT_EQ(app->state(), PipelineState::Done);
  EXPECT_EQ(wfp_->tasks_done(), 16u);
  // Per-task journal entries are identical to the per-task path: every
  // task still records all six transitions individually.
  for (const std::string& uid : uids) {
    int transitions = 0;
    for (const StateTransaction& t : store_.history()) {
      if (t.uid == uid) ++transitions;
    }
    EXPECT_EQ(transitions, 6);
    EXPECT_EQ(store_.state_of(uid), "DONE");
  }
}

TEST_F(WfpFixture, StateJournalSeesEveryTransition) {
  PipelinePtr app = make_app(1, 1);
  start_wfp();
  const std::string uid = pop_pending();
  complete(uid, "DONE");
  wfp_->wait_completion();
  // DESCRIBED->SCHEDULING->SCHEDULED->SUBMITTING->SUBMITTED->EXECUTED->DONE
  int task_transitions = 0;
  for (const StateTransaction& t : store_.history()) {
    if (t.uid == uid) ++task_transitions;
  }
  EXPECT_EQ(task_transitions, 6);
  EXPECT_EQ(store_.state_of(uid), "DONE");
  EXPECT_EQ(store_.state_of(app->uid()), "DONE");
}

}  // namespace
}  // namespace entk
