// Unit + property tests for the JSON library.
#include <gtest/gtest.h>

#include <cmath>

#include "src/json/json.hpp"

namespace entk::json {
namespace {

TEST(JsonValue, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), Type::Null);
}

TEST(JsonValue, ScalarConstructionAndAccess) {
  EXPECT_TRUE(Value(true).as_bool());
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_EQ(Value(-7ll).as_int(), -7);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
}

TEST(JsonValue, IntDoubleInterplay) {
  EXPECT_DOUBLE_EQ(Value(3).as_double(), 3.0);
  EXPECT_EQ(Value(4.0).as_int(), 4);  // integral double converts
  EXPECT_THROW(Value(4.5).as_int(), TypeError);
}

TEST(JsonValue, TypeMismatchThrows) {
  EXPECT_THROW(Value(1).as_string(), TypeError);
  EXPECT_THROW(Value("x").as_int(), TypeError);
  EXPECT_THROW(Value(true).as_array(), TypeError);
  EXPECT_THROW(Value().as_object(), TypeError);
}

TEST(JsonValue, ObjectSugarCreatesKeys) {
  Value v;
  v["a"] = 1;
  v["b"]["nested"] = "x";
  EXPECT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").as_int(), 1);
  EXPECT_EQ(v.at("b").at("nested").as_string(), "x");
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("zz"));
  EXPECT_THROW(v.at("zz"), MissingError);
}

TEST(JsonValue, ObjectPreservesInsertionOrder) {
  Value v;
  v["z"] = 1;
  v["a"] = 2;
  v["m"] = 3;
  std::vector<std::string> keys;
  for (const auto& [k, val] : v.as_object()) {
    (void)val;
    keys.push_back(k);
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"z", "a", "m"}));
}

TEST(JsonValue, ArrayPushBack) {
  Value v;
  v.push_back(1);
  v.push_back("two");
  EXPECT_TRUE(v.is_array());
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.as_array()[1].as_string(), "two");
}

TEST(JsonValue, GetWithDefaults) {
  Value v;
  v["i"] = 5;
  v["d"] = 1.5;
  v["s"] = "str";
  v["b"] = true;
  EXPECT_EQ(v.get_int("i", 0), 5);
  EXPECT_EQ(v.get_int("missing", 9), 9);
  EXPECT_DOUBLE_EQ(v.get_double("d", 0), 1.5);
  EXPECT_EQ(v.get_string("s", ""), "str");
  EXPECT_TRUE(v.get_bool("b", false));
  EXPECT_EQ(v.get_string("i", "fallback"), "fallback");  // wrong type
  Value not_object(3);
  EXPECT_EQ(not_object.get_int("k", 7), 7);
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_EQ(parse("123").as_int(), 123);
  EXPECT_EQ(parse("-9").as_int(), -9);
  EXPECT_DOUBLE_EQ(parse("3.25").as_double(), 3.25);
  EXPECT_DOUBLE_EQ(parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(parse("\"abc\"").as_string(), "abc");
}

TEST(JsonParse, Structures) {
  Value v = parse(R"({"a": [1, 2, {"b": null}], "c": "x"})");
  EXPECT_EQ(v.at("a").size(), 3u);
  EXPECT_TRUE(v.at("a").as_array()[2].at("b").is_null());
  EXPECT_EQ(v.at("c").as_string(), "x");
}

TEST(JsonParse, WhitespaceTolerant) {
  Value v = parse("  {\n\t\"a\" :\r 1 } ");
  EXPECT_EQ(v.at("a").as_int(), 1);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\nb")").as_string(), "a\nb");
  EXPECT_EQ(parse(R"("q\"q")").as_string(), "q\"q");
  EXPECT_EQ(parse(R"("back\\slash")").as_string(), "back\\slash");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");  // é in UTF-8
}

TEST(JsonParse, Errors) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{"), ParseError);
  EXPECT_THROW(parse("[1,]"), ParseError);
  EXPECT_THROW(parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(parse("tru"), ParseError);
  EXPECT_THROW(parse("1 2"), ParseError);  // trailing garbage
  EXPECT_THROW(parse("\"unterminated"), ParseError);
  EXPECT_THROW(parse("\"bad\x01ctrl\""), ParseError);
  EXPECT_THROW(parse("nan"), ParseError);
}

TEST(JsonParse, PrefixParsing) {
  const std::string two = "{\"a\":1}\n{\"b\":2}";
  std::size_t pos = 0;
  Value first = parse_prefix(two, pos);
  EXPECT_EQ(first.at("a").as_int(), 1);
  Value second = parse_prefix(two, pos);
  EXPECT_EQ(second.at("b").as_int(), 2);
  EXPECT_EQ(pos, two.size());
}

TEST(JsonDump, CompactAndPretty) {
  Value v;
  v["a"] = 1;
  v["b"].push_back(true);
  EXPECT_EQ(v.dump(), R"({"a":1,"b":[true]})");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find("\n  \"a\": 1"), std::string::npos);
}

TEST(JsonDump, SpecialDoubles) {
  EXPECT_EQ(Value(std::nan("")).dump(), "null");
  // Infinities degrade to overflowing literals that parse back as inf.
  EXPECT_EQ(Value(INFINITY).dump(), "1e999");
}

TEST(JsonDump, EscapesControlCharacters) {
  Value v(std::string("a\x01" "b"));
  EXPECT_EQ(v.dump(), "\"a\\u0001b\"");
}

TEST(JsonEquality, StructuralAndNumeric) {
  EXPECT_EQ(parse("{\"a\":1,\"b\":2}"), parse("{\"b\":2,\"a\":1}"));
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_FALSE(Value(2) == Value(3));
  EXPECT_FALSE(Value("2") == Value(2));
}

// Property: dump -> parse is the identity for a family of generated values.
class JsonRoundTrip : public ::testing::TestWithParam<int> {};

Value generate(int seed, int depth = 0) {
  // Deterministic pseudo-random structure from the seed.
  const int kind = (seed * 2654435761u >> 8) % (depth > 2 ? 5 : 7);
  switch (kind) {
    case 0: return Value();
    case 1: return Value(seed % 2 == 0);
    case 2: return Value(seed * 1234567 - 42);
    case 3: return Value(seed * 0.37 - 1.5);
    case 4: return Value("s" + std::to_string(seed) + "\n\"\\x");
    case 5: {
      Value arr;
      for (int i = 0; i < seed % 4 + 1; ++i) {
        arr.push_back(generate(seed * 7 + i, depth + 1));
      }
      return arr;
    }
    default: {
      Value obj;
      for (int i = 0; i < seed % 3 + 1; ++i) {
        obj["k" + std::to_string(i)] = generate(seed * 13 + i, depth + 1);
      }
      return obj;
    }
  }
}

TEST_P(JsonRoundTrip, DumpParseIdentity) {
  const Value original = generate(GetParam());
  EXPECT_EQ(parse(original.dump()), original);
  EXPECT_EQ(parse(original.dump(2)), original);  // pretty round-trips too
}

INSTANTIATE_TEST_SUITE_P(Generated, JsonRoundTrip, ::testing::Range(1, 60));

// Targeted round-trip properties: the generated family above cannot hit
// every encoder edge, so escapes, unicode and numeric extremes get their
// own cases (the dump side now uses std::to_chars shortest formatting).

TEST(JsonRoundTrip, EscapeEdgeCases) {
  const std::string cases[] = {
      "",                                  // empty string
      std::string(1, '\0'),                // embedded NUL
      "\"quoted\" and \\back\\slash\\",
      "line\nfeed\rreturn\ttab\bbs\ffeed",
      std::string("\x01\x02\x03\x1e\x1f"),  // full control range edges
      "ends with backslash \\",
      "/solidus needs no escape/",
  };
  for (const std::string& s : cases) {
    const Value v(s);
    EXPECT_EQ(parse(v.dump()), v) << v.dump();
    EXPECT_EQ(parse(v.dump()).as_string(), s);
  }
}

TEST(JsonRoundTrip, UnicodePassesThroughUtf8) {
  const std::string cases[] = {
      "caf\xc3\xa9",                        // 2-byte UTF-8 (é)
      "\xe6\xbc\xa2\xe5\xad\x97",           // 3-byte (漢字)
      "\xf0\x9f\x9a\x80 rocket",            // 4-byte (emoji)
      "mixed \xc2\xb5 and ascii",
  };
  for (const std::string& s : cases) {
    const Value v(s);
    EXPECT_EQ(parse(v.dump()).as_string(), s);
  }
  // \uXXXX escapes decode to UTF-8 and then round-trip as raw bytes.
  const Value parsed = parse("\"\\u00e9\"");
  EXPECT_EQ(parsed.as_string(), "\xc3\xa9");
  EXPECT_EQ(parse(parsed.dump()), parsed);
}

TEST(JsonRoundTrip, IntegerExtremes) {
  const std::int64_t cases[] = {
      0,
      -1,
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min(),
      4611686018427387904LL,   // 2^62
      -4611686018427387905LL,
  };
  for (const std::int64_t i : cases) {
    const Value v(i);
    EXPECT_EQ(parse(v.dump()), v) << i;
    EXPECT_EQ(parse(v.dump()).as_int(), i);
  }
}

TEST(JsonRoundTrip, DoubleExtremesSurviveExactly) {
  const double cases[] = {
      0.1,
      1.0 / 3.0,
      -0.0,
      5e-324,                                     // smallest denormal
      std::numeric_limits<double>::min(),         // smallest normal
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::epsilon(),
      1e22,                                       // exponent formatting
      -2.2250738585072011e-308,                   // near-denormal boundary
      3.141592653589793,
  };
  for (const double d : cases) {
    const Value round = parse(Value(d).dump());
    // Bit-exact: shortest-round-trip formatting must reproduce the double
    // (whole-valued doubles may come back as Int; Value equality and the
    // numeric comparison both accept that).
    ASSERT_EQ(round, Value(d)) << d;
    EXPECT_EQ(round.as_double(), d) << d;
  }
}

TEST(JsonDump, ShortestDoubleFormatting) {
  // std::to_chars emits the shortest text that round-trips, not %.17g's
  // padded form — 0.1 must dump as "0.1", not "0.10000000000000001".
  EXPECT_EQ(Value(0.1).dump(), "0.1");
  EXPECT_EQ(Value(2.5).dump(), "2.5");
}

TEST(JsonDump, LargePayloadDumpsWithReservedCapacity) {
  // Functional guard for the reserve() fast path: a payload much larger
  // than any growth increment still dumps and re-parses identically.
  Value big;
  for (int i = 0; i < 200; ++i) {
    Value row;
    row["id"] = i;
    row["name"] = "task-" + std::to_string(i);
    row["data"] = std::string(64, 'x');
    row["f"] = i * 0.125;
    big["rows"].push_back(std::move(row));
  }
  const std::string text = big.dump();
  EXPECT_GT(text.size(), 10000u);
  EXPECT_EQ(parse(text), big);
}

}  // namespace
}  // namespace entk::json
