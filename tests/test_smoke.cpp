// End-to-end smoke tests: the full EnTK stack (AppManager -> WFProcessor ->
// ExecManager -> PilotRts -> Agent on a simulated CI) executing small PST
// applications.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>

#include "src/core/app_manager.hpp"

namespace entk {
namespace {

TaskPtr make_sleep_task(double duration_s) {
  auto t = std::make_shared<Task>("sleep");
  t->executable = "/bin/sleep";
  t->duration_s = duration_s;
  return t;
}

PipelinePtr make_pipeline(int stages, int tasks_per_stage, double duration_s) {
  auto p = std::make_shared<Pipeline>("p");
  for (int s = 0; s < stages; ++s) {
    auto stage = std::make_shared<Stage>("s" + std::to_string(s));
    for (int t = 0; t < tasks_per_stage; ++t) {
      stage->add_task(make_sleep_task(duration_s));
    }
    p->add_stage(stage);
  }
  return p;
}

AppManagerConfig fast_config() {
  AppManagerConfig cfg;
  cfg.resource.resource = "local.localhost";
  cfg.resource.cpus = 16;
  cfg.resource.agent.env_setup_s = 0.1;
  cfg.resource.agent.dispatch_rate_per_s = 1000;
  cfg.resource.rts_teardown_base_s = 0.01;
  cfg.resource.rts_teardown_per_unit_s = 0.0;
  cfg.clock_scale = 1e-4;  // 1 virtual second = 0.1 ms
  return cfg;
}

TEST(Smoke, SingleTaskCompletes) {
  AppManager amgr(fast_config());
  amgr.add_pipelines({make_pipeline(1, 1, 5.0)});
  amgr.run();
  EXPECT_EQ(amgr.tasks_done(), 1u);
  EXPECT_EQ(amgr.tasks_failed(), 0u);
  EXPECT_EQ(amgr.pipelines()[0]->state(), PipelineState::Done);
}

TEST(Smoke, ConcurrentTasksInOneStage) {
  AppManager amgr(fast_config());
  amgr.add_pipelines({make_pipeline(1, 12, 10.0)});
  amgr.run();
  EXPECT_EQ(amgr.tasks_done(), 12u);
  const OverheadReport r = amgr.overheads();
  // 12 concurrent 10 s tasks on 16 cores: span ~ 10 s + env, not ~120 s.
  EXPECT_LT(r.task_exec_s, 30.0);
  EXPECT_GT(r.task_exec_s, 9.0);
}

TEST(Smoke, SequentialStages) {
  AppManager amgr(fast_config());
  amgr.add_pipelines({make_pipeline(4, 1, 5.0)});
  amgr.run();
  EXPECT_EQ(amgr.tasks_done(), 4u);
  // 4 sequential 5 s stages: span >= 20 s.
  EXPECT_GE(amgr.overheads().task_exec_s, 20.0);
}

TEST(Smoke, MultiplePipelinesRunConcurrently) {
  AppManager amgr(fast_config());
  std::vector<PipelinePtr> pipelines;
  for (int i = 0; i < 4; ++i) pipelines.push_back(make_pipeline(1, 2, 10.0));
  amgr.add_pipelines(std::move(pipelines));
  amgr.run();
  EXPECT_EQ(amgr.tasks_done(), 8u);
  for (const PipelinePtr& p : amgr.pipelines()) {
    EXPECT_EQ(p->state(), PipelineState::Done);
  }
  // Full serialization of 8 x 10 v-s tasks would span 80 v-s; any bound
  // well below that proves overlap. 50 (not lower) because the span is
  // virtual time and inflates with scheduler latency under parallel ctest.
  EXPECT_LT(amgr.overheads().task_exec_s, 50.0);
}

TEST(Smoke, CallableTaskRunsAndReturnsResult) {
  std::atomic<int> calls{0};
  AppManagerConfig cfg = fast_config();
  AppManager amgr(cfg);
  auto p = std::make_shared<Pipeline>("p");
  auto stage = std::make_shared<Stage>("s");
  auto task = std::make_shared<Task>("compute");
  task->function = [&calls] {
    ++calls;
    return 0;
  };
  task->duration_s = 1.0;
  stage->add_task(task);
  p->add_stage(stage);
  amgr.add_pipelines({p});
  amgr.run();
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(amgr.tasks_done(), 1u);
  EXPECT_EQ(task->exit_code(), 0);
}

TEST(Smoke, FailingTaskWithoutRetriesFailsPipeline) {
  AppManagerConfig cfg = fast_config();
  cfg.task_retry_limit = 0;
  AppManager amgr(cfg);
  auto p = std::make_shared<Pipeline>("p");
  auto stage = std::make_shared<Stage>("s");
  auto task = std::make_shared<Task>("bad");
  task->function = [] { return 3; };
  task->duration_s = 0.5;
  stage->add_task(task);
  p->add_stage(stage);
  amgr.add_pipelines({p});
  amgr.run();
  EXPECT_EQ(amgr.tasks_failed(), 1u);
  EXPECT_EQ(p->state(), PipelineState::Failed);
  EXPECT_EQ(task->exit_code(), 3);
}

TEST(Smoke, FailingTaskIsResubmittedUntilSuccess) {
  AppManagerConfig cfg = fast_config();
  cfg.task_retry_limit = 5;
  AppManager amgr(cfg);
  auto p = std::make_shared<Pipeline>("p");
  auto stage = std::make_shared<Stage>("s");
  auto task = std::make_shared<Task>("flaky");
  auto counter = std::make_shared<std::atomic<int>>(0);
  task->function = [counter] { return ++*counter < 3 ? 1 : 0; };
  task->duration_s = 0.5;
  stage->add_task(task);
  p->add_stage(stage);
  amgr.add_pipelines({p});
  amgr.run();
  EXPECT_EQ(counter->load(), 3);
  EXPECT_EQ(amgr.tasks_done(), 1u);
  EXPECT_EQ(amgr.resubmissions(), 2u);
  EXPECT_EQ(p->state(), PipelineState::Done);
}

TEST(Smoke, PostExecHookExtendsPipeline) {
  AppManager amgr(fast_config());
  auto p = std::make_shared<Pipeline>("adaptive");
  auto counter = std::make_shared<std::atomic<int>>(0);

  // Each stage appends another stage until three have run: the paper's
  // adaptive pattern (iteration count unknown before execution).
  std::function<StagePtr()> make_stage = [&]() {
    auto stage = std::make_shared<Stage>("iter");
    auto task = std::make_shared<Task>("work");
    task->function = [counter] {
      ++*counter;
      return 0;
    };
    task->duration_s = 0.5;
    stage->add_task(task);
    return stage;
  };
  // Capture by value in the hook: hooks run on the WFProcessor thread.
  std::shared_ptr<std::function<void()>> extend =
      std::make_shared<std::function<void()>>();
  *extend = [p, counter, make_stage, extend] {
    if (counter->load() < 3) {
      StagePtr next = make_stage();
      next->post_exec = *extend;
      p->add_stage(next);
    }
  };
  StagePtr first = make_stage();
  first->post_exec = *extend;
  p->add_stage(first);

  amgr.add_pipelines({p});
  amgr.run();
  EXPECT_EQ(counter->load(), 3);
  EXPECT_EQ(amgr.tasks_done(), 3u);
  EXPECT_EQ(p->stage_count(), 3u);
}

TEST(Smoke, StateJournalRecordsAllTransitions) {
  AppManagerConfig cfg = fast_config();
  // Fresh directory per run: journals append, and AppManager uids repeat
  // across processes.
  const std::string dir = ::testing::TempDir() + "/entk_journal_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(wall_now_us());
  std::filesystem::create_directories(dir);
  cfg.journal_dir = dir;
  AppManager amgr(cfg);
  amgr.add_pipelines({make_pipeline(1, 2, 1.0)});
  amgr.run();
  StateStore* store = amgr.state_store();
  ASSERT_NE(store, nullptr);
  // 2 tasks x 6 transitions + stage x 3 + pipeline x 2.
  EXPECT_GE(store->transaction_count(), 2u * 6u + 3u + 2u);
  // Recovery from the journal reproduces the final states.
  StateStore recovered;
  recovered.recover(store->journal_path());
  EXPECT_EQ(recovered.transaction_count(), store->transaction_count());
  EXPECT_EQ(recovered.state_of(amgr.pipelines()[0]->uid()), "DONE");
}

}  // namespace
}  // namespace entk
