// Unit tests for the in-process message broker (queues, ack/nack,
// capacity, journaling and recovery, concurrency).
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "src/common/clock.hpp"
#include "src/mq/channel.hpp"
#include "src/mq/journal.hpp"
#include "src/obs/metrics.hpp"

namespace entk::mq {
namespace {

Message text_message(const std::string& body) {
  Message m;
  m.set_body(body);
  return m;
}

std::string fresh_dir() {
  const std::string dir = ::testing::TempDir() + "/entk_mq_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(entk::wall_now_us());
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(Queue, FifoOrder) {
  Queue q("q", {});
  for (int i = 0; i < 5; ++i) q.publish(text_message(std::to_string(i)));
  for (int i = 0; i < 5; ++i) {
    auto d = q.try_get();
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->message.body(), std::to_string(i));
    EXPECT_TRUE(q.ack(d->delivery_tag).has_value());
  }
  EXPECT_FALSE(q.try_get().has_value());
}

TEST(Queue, GetTimesOutOnEmpty) {
  Queue q("q", {});
  const double t0 = wall_now_s();
  EXPECT_FALSE(q.get(0.02).has_value());
  EXPECT_GE(wall_now_s() - t0, 0.015);
}

TEST(Queue, AckRemovesNackRequeues) {
  Queue q("q", {});
  q.publish(text_message("a"));
  auto d = q.try_get();
  ASSERT_TRUE(d);
  EXPECT_EQ(q.stats().unacked, 1u);
  // Nack with requeue puts it back at the head.
  EXPECT_TRUE(q.nack(d->delivery_tag, true).has_value());
  EXPECT_EQ(q.stats().unacked, 0u);
  auto d2 = q.try_get();
  ASSERT_TRUE(d2);
  EXPECT_EQ(d2->message.body(), "a");
  // Double ack fails.
  EXPECT_TRUE(q.ack(d2->delivery_tag).has_value());
  EXPECT_FALSE(q.ack(d2->delivery_tag).has_value());
}

TEST(Queue, NackWithoutRequeueDrops) {
  Queue q("q", {});
  q.publish(text_message("a"));
  auto d = q.try_get();
  ASSERT_TRUE(d);
  EXPECT_TRUE(q.nack(d->delivery_tag, false).has_value());
  EXPECT_FALSE(q.try_get().has_value());
}

TEST(Queue, RequeueUnackedPreservesOrder) {
  Queue q("q", {});
  for (int i = 0; i < 3; ++i) q.publish(text_message(std::to_string(i)));
  auto a = q.try_get();
  auto b = q.try_get();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(q.requeue_unacked(), 2u);
  for (int i = 0; i < 3; ++i) {
    auto d = q.try_get();
    ASSERT_TRUE(d);
    EXPECT_EQ(d->message.body(), std::to_string(i));
  }
}

TEST(Queue, CapacityBlocksPublisher) {
  Queue q("q", QueueOptions{.durable = false, .capacity = 2});
  q.publish(text_message("1"));
  q.publish(text_message("2"));
  std::atomic<bool> published{false};
  std::thread t([&] {
    q.publish(text_message("3"));
    published = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(published.load());
  auto d = q.try_get();
  ASSERT_TRUE(d);
  t.join();
  EXPECT_TRUE(published.load());
}

TEST(Queue, CloseWakesBlockedConsumer) {
  Queue q("q", {});
  std::atomic<bool> woke{false};
  std::thread t([&] {
    q.get(5.0);
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  t.join();
  EXPECT_TRUE(woke.load());
  EXPECT_FALSE(q.publish(text_message("x")));
}

TEST(Queue, PurgeDropsReady) {
  Queue q("q", {});
  for (int i = 0; i < 4; ++i) q.publish(text_message("x"));
  EXPECT_EQ(q.purge(), 4u);
  EXPECT_EQ(q.ready_count(), 0u);
}

TEST(Queue, PublishBatchGetBatchPreserveOrder) {
  Queue q("q", {});
  std::vector<Message> batch;
  for (int i = 0; i < 6; ++i) batch.push_back(text_message(std::to_string(i)));
  EXPECT_EQ(q.publish_batch(std::move(batch)), 6u);
  const auto got = q.get_batch(4, 0.0);
  ASSERT_EQ(got.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].message.body(),
              std::to_string(i));
  }
  const auto rest = q.get_batch(10, 0.0);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].message.body(), "4");
  EXPECT_EQ(rest[1].message.body(), "5");
}

TEST(Queue, GetBatchPartialOnTimeout) {
  Queue q("q", {});
  q.publish(text_message("only"));
  // Asks for 8 but must return what is there once the deadline passes
  // instead of blocking for a full batch.
  const auto got = q.get_batch(8, 0.01);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].message.body(), "only");
  // Empty queue + elapsed timeout: empty batch, not a hang.
  EXPECT_TRUE(q.get_batch(8, 0.0).empty());
}

TEST(Queue, AckBatchSkipsStaleTags) {
  Queue q("q", {});
  for (int i = 0; i < 3; ++i) q.publish(text_message(std::to_string(i)));
  const auto got = q.get_batch(3, 0.0);
  ASSERT_EQ(got.size(), 3u);
  ASSERT_TRUE(q.ack(got[1].delivery_tag).has_value());  // now stale below
  const std::vector<std::uint64_t> tags = {got[0].delivery_tag,
                                           got[1].delivery_tag, 999999,
                                           got[2].delivery_tag};
  // Only the two still-unacked valid tags are acked.
  EXPECT_EQ(q.ack_batch(tags).size(), 2u);
  EXPECT_EQ(q.depth().unacked, 0u);
}

TEST(Queue, RequeueAfterBatchGetPreservesOrder) {
  Queue q("q", {});
  std::vector<Message> batch;
  for (int i = 0; i < 4; ++i) batch.push_back(text_message(std::to_string(i)));
  q.publish_batch(std::move(batch));
  ASSERT_EQ(q.get_batch(4, 0.0).size(), 4u);
  EXPECT_EQ(q.requeue_unacked(), 4u);
  const auto again = q.get_batch(4, 0.0);
  ASSERT_EQ(again.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(again[static_cast<std::size_t>(i)].message.body(),
              std::to_string(i));
  }
}

TEST(Queue, RequeueIsExemptFromCapacity) {
  // Regression: redelivery must never deadlock against the capacity bound.
  // With capacity 1 and one unacked message, a publisher fills the ready
  // slot; nack(requeue) and requeue_unacked still return messages to the
  // head immediately even though ready is already at capacity.
  Queue q("q", QueueOptions{.durable = false, .capacity = 1});
  q.publish(text_message("first"));
  auto d = q.try_get();
  ASSERT_TRUE(d);
  q.publish(text_message("second"));  // ready back at capacity
  EXPECT_TRUE(q.nack(d->delivery_tag, true));
  EXPECT_EQ(q.ready_count(), 2u);  // above capacity, by design
  auto redelivered = q.try_get();
  ASSERT_TRUE(redelivered);
  EXPECT_EQ(redelivered->message.body(), "first");

  // Same for the bulk variant.
  auto d2 = q.try_get();
  ASSERT_TRUE(d2);
  EXPECT_EQ(q.ready_count(), 0u);
  q.publish(text_message("third"));
  EXPECT_EQ(q.requeue_unacked(), 2u);
  EXPECT_EQ(q.ready_count(), 3u);
}

TEST(Queue, ZeroTimeoutGetIsNonBlockingShortCircuit) {
  Queue q("q", {});
  EXPECT_FALSE(q.get(0.0).has_value());
  EXPECT_FALSE(q.try_get().has_value());
  q.publish(text_message("x"));
  EXPECT_TRUE(q.get(0.0).has_value());
}

TEST(Broker, PublishBatchAssignsContiguousSeqs) {
  Broker b;
  b.declare_queue("q");
  std::vector<Message> batch;
  for (int i = 0; i < 5; ++i) batch.push_back(text_message(std::to_string(i)));
  const std::uint64_t first = b.publish_batch("q", std::move(batch));
  const auto got = b.get_batch("q", 5, 0.0);
  ASSERT_EQ(got.size(), 5u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].message.seq, first + i);
  }
  std::vector<std::uint64_t> tags;
  for (const Delivery& d : got) tags.push_back(d.delivery_tag);
  EXPECT_EQ(b.ack_batch("q", tags), 5u);
}

TEST(Broker, DepthSnapshotReportsReadyAndUnacked) {
  Broker b;
  b.declare_queue("a");
  b.declare_queue("b");
  b.publish("a", text_message("1"));
  b.publish("a", text_message("2"));
  ASSERT_TRUE(b.get("a", 0.0).has_value());  // one unacked
  const auto depths = b.depth_snapshot();
  ASSERT_EQ(depths.size(), 2u);
  for (const QueueDepth& d : depths) {
    if (d.queue == "a") {
      EXPECT_EQ(d.ready, 1u);
      EXPECT_EQ(d.unacked, 1u);
    } else {
      EXPECT_EQ(d.queue, "b");
      EXPECT_EQ(d.ready, 0u);
      EXPECT_EQ(d.unacked, 0u);
    }
  }
}

TEST(Broker, DepthSnapshotPrefixFiltersWithoutFullScan) {
  Broker b("b", "", {}, 4);  // sharded: the filter must merge shards too
  b.declare_queue("t.app1/q.pending");
  b.declare_queue("t.app1/q.done");
  b.declare_queue("t.app10/q.pending");  // shares a string prefix, not a
                                         // tenant prefix ("t.app1/")
  b.declare_queue("q.pending");
  b.publish("t.app1/q.pending", text_message("x"));
  b.publish("t.app10/q.pending", text_message("y"));

  const auto filtered = b.depth_snapshot("t.app1/");
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0].queue, "t.app1/q.done");
  EXPECT_EQ(filtered[1].queue, "t.app1/q.pending");
  EXPECT_EQ(filtered[1].ready, 1u);

  // Empty prefix = the full snapshot.
  EXPECT_EQ(b.depth_snapshot("").size(), 4u);
  EXPECT_TRUE(b.depth_snapshot("t.ghost/").empty());
}

TEST(Broker, DepthSnapshotTracksBacklogBytes) {
  Broker b;
  b.declare_queue("q");
  b.publish("q", text_message(std::string(100, 'a')));
  b.publish("q", text_message(std::string(50, 'b')));
  auto depths = b.depth_snapshot();
  ASSERT_EQ(depths.size(), 1u);
  // approx_size of a rendered body is its byte count exactly.
  EXPECT_EQ(depths[0].bytes, 150u);

  // Bytes follow messages across ready -> unacked -> gone transitions.
  auto d = b.get("q", 0.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(b.depth_snapshot()[0].bytes, 150u);  // unacked still counts
  ASSERT_TRUE(b.ack("q", d->delivery_tag));
  EXPECT_EQ(b.depth_snapshot()[0].bytes, 50u);

  // Nack with requeue keeps the bytes; nack-drop releases them.
  auto d2 = b.get("q", 0.0);
  ASSERT_TRUE(d2.has_value());
  ASSERT_TRUE(b.nack("q", d2->delivery_tag, /*requeue=*/true));
  EXPECT_EQ(b.depth_snapshot()[0].bytes, 50u);
  auto d3 = b.get("q", 0.0);
  ASSERT_TRUE(d3.has_value());
  ASSERT_TRUE(b.nack("q", d3->delivery_tag, /*requeue=*/false));
  EXPECT_EQ(b.depth_snapshot()[0].bytes, 0u);
}

TEST(Message, ApproxSizeCoversAllRepresentations) {
  Message rendered;
  rendered.set_body("12345678");
  EXPECT_EQ(rendered.approx_size(), 8u);

  json::Value payload;
  payload["text"] = std::string(32, 'p');
  Message structured = Message::json_body("q", std::move(payload));
  // Structural estimate: non-zero and within a small factor of the
  // rendered size (it prices strings/keys, not exact JSON punctuation).
  const std::size_t approx = structured.approx_size();
  EXPECT_GT(approx, 32u);
  EXPECT_LT(approx, 128u);
}

TEST(Broker, JournalRecoversBatchPublishedMessages) {
  const std::string dir = fresh_dir();
  std::string journal;
  {
    Broker b("jbatch", dir);
    journal = b.journal_path();
    b.declare_queue("q", QueueOptions{.durable = true});
    std::vector<Message> batch;
    for (int i = 0; i < 3; ++i) {
      batch.push_back(text_message(std::to_string(i)));
    }
    b.publish_batch("q", std::move(batch));
    // Consume + batch-ack the first; the other two must survive recovery.
    auto d = b.get("q", 0.0);
    ASSERT_TRUE(d);
    EXPECT_EQ(b.ack_batch("q", {d->delivery_tag}), 1u);
  }
  Broker recovered("jbatch2");
  EXPECT_EQ(recovered.recover(journal), 2u);
  const auto got = recovered.get_batch("q", 8, 0.0);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].message.body(), "1");
  EXPECT_EQ(got[1].message.body(), "2");
}

TEST(Broker, DeclareLookupAndPublish) {
  Broker b;
  b.declare_queue("alpha");
  EXPECT_TRUE(b.has_queue("alpha"));
  EXPECT_FALSE(b.has_queue("beta"));
  EXPECT_THROW(b.queue("beta"), MqError);
  EXPECT_THROW(b.publish("beta", text_message("x")), MqError);

  const std::uint64_t s1 = b.publish("alpha", text_message("1"));
  const std::uint64_t s2 = b.publish("alpha", text_message("2"));
  EXPECT_LT(s1, s2);  // broker-wide monotonic sequence

  auto d = b.get("alpha", 0.0);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->message.seq, s1);
  EXPECT_EQ(d->message.routing_key, "alpha");
  EXPECT_TRUE(b.ack("alpha", d->delivery_tag));
}

TEST(Broker, RedeclareSameOptionsIdempotent) {
  Broker b;
  b.declare_queue("q", {.durable = false, .capacity = 5});
  EXPECT_NO_THROW(b.declare_queue("q", {.durable = false, .capacity = 5}));
  EXPECT_THROW(b.declare_queue("q", {.durable = true, .capacity = 5}),
               MqError);
}

TEST(Broker, StatsAggregate) {
  Broker b;
  b.declare_queue("a");
  b.declare_queue("b");
  b.publish("a", text_message("1"));
  b.publish("b", text_message("2"));
  auto d = b.get("a", 0.0);
  b.ack("a", d->delivery_tag);
  const BrokerStats s = b.stats();
  EXPECT_EQ(s.queues, 2u);
  EXPECT_EQ(s.published, 2u);
  EXPECT_EQ(s.delivered, 1u);
  EXPECT_EQ(s.acked, 1u);
}

TEST(Broker, CloseStopsPublishes) {
  Broker b;
  b.declare_queue("q");
  b.close();
  EXPECT_TRUE(b.closed());
  EXPECT_THROW(b.publish("q", text_message("x")), MqError);
  EXPECT_THROW(b.declare_queue("r"), MqError);
}

TEST(Broker, DeleteQueue) {
  Broker b;
  b.declare_queue("q");
  b.delete_queue("q");
  EXPECT_FALSE(b.has_queue("q"));
  b.delete_queue("q");  // idempotent
}

TEST(Broker, JournalRecoversUnackedMessages) {
  const std::string dir = fresh_dir();
  std::string journal;
  {
    Broker b("jb", dir);
    journal = b.journal_path();
    b.declare_queue("durable", {.durable = true});
    b.declare_queue("volatile", {.durable = false});
    for (int i = 0; i < 5; ++i) {
      b.publish("durable", text_message("d" + std::to_string(i)));
    }
    b.publish("volatile", text_message("gone"));
    // Consume and ack two of the durable messages.
    for (int i = 0; i < 2; ++i) {
      auto d = b.get("durable", 0.0);
      ASSERT_TRUE(d);
      b.ack("durable", d->delivery_tag);
    }
    // Broker "dies" here: unacked/undelivered messages d2..d4 remain.
  }
  Broker recovered("jb2");
  EXPECT_EQ(recovered.recover(journal), 3u);
  EXPECT_TRUE(recovered.has_queue("durable"));
  EXPECT_FALSE(recovered.has_queue("volatile"));  // not journaled
  for (int i = 2; i < 5; ++i) {
    auto d = recovered.get("durable", 0.0);
    ASSERT_TRUE(d);
    EXPECT_EQ(d->message.body(), "d" + std::to_string(i));
  }
  EXPECT_FALSE(recovered.get("durable", 0.0).has_value());
}

TEST(Broker, JournalSkipsTornTailRecord) {
  const std::string dir = fresh_dir();
  std::string journal;
  {
    Broker b("torn", dir);
    journal = b.journal_path();
    b.declare_queue("q", {.durable = true});
    b.publish("q", text_message("ok"));
  }
  // Simulate a crash mid-append.
  {
    std::FILE* f = std::fopen(journal.c_str(), "a");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"op\":\"pub\",\"q\":\"q\",\"se", f);
    std::fclose(f);
  }
  Broker recovered("torn2");
  EXPECT_EQ(recovered.recover(journal), 1u);
  auto d = recovered.get("q", 0.0);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->message.body(), "ok");
}

TEST(Broker, ConcurrentProducersConsumersLoseNothing) {
  Broker b;
  b.declare_queue("work");
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&b, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        b.publish("work", text_message(std::to_string(p * 10000 + i)));
      }
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&b, &consumed] {
      while (consumed.load() < kProducers * kPerProducer) {
        auto d = b.get("work", 0.001);
        if (d) {
          b.ack("work", d->delivery_tag);
          ++consumed;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  EXPECT_EQ(b.queue("work")->stats().unacked, 0u);
}

TEST(Channel, AmqpShapedFacade) {
  auto broker = std::make_shared<Broker>();
  Connection conn(broker);
  EXPECT_TRUE(conn.is_open());
  auto ch = conn.open_channel();
  ch->queue_declare("q");
  json::Value payload;
  payload["k"] = 7;
  ch->basic_publish("q", payload);
  auto d = ch->basic_get("q", 0.0);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->message.body_json().at("k").as_int(), 7);
  EXPECT_TRUE(ch->basic_ack("q", d->delivery_tag));
  ch->basic_publish_raw("q", "raw-bytes");
  auto d2 = ch->basic_get("q", 0.0);
  ASSERT_TRUE(d2);
  EXPECT_EQ(d2->message.body(), "raw-bytes");
  EXPECT_TRUE(ch->basic_nack("q", d2->delivery_tag, false));
  ch->queue_purge("q");
  ch->queue_delete("q");
  EXPECT_FALSE(broker->has_queue("q"));
}

TEST(Message, JsonBodyHelper) {
  json::Value payload;
  payload["x"] = 1;
  Message m = Message::json_body("route", payload);
  EXPECT_EQ(m.routing_key, "route");
  EXPECT_EQ(m.body_json().at("x").as_int(), 1);
  Message bad;
  bad.set_body("{not json");
  EXPECT_THROW(bad.body_json(), json::ParseError);
}

// ------------------------------------------------- zero-copy messaging --

TEST(Message, JsonBodyCarriesStructuredPayloadWithoutSerializing) {
  json::Value payload;
  payload["x"] = 42;
  Message m = Message::json_body("route", std::move(payload));
  EXPECT_TRUE(m.has_payload());
  EXPECT_FALSE(m.has_rendered_body());  // nothing serialized yet
  EXPECT_EQ(m.payload()->at("x").as_int(), 42);
  EXPECT_FALSE(m.has_rendered_body());  // reading the payload never renders
}

TEST(Message, BodyRendersLazilyAndMemoizes) {
  json::Value payload;
  payload["k"] = "v";
  Message m = Message::json_body("route", std::move(payload));
  const std::string& first = m.body();
  EXPECT_TRUE(m.has_rendered_body());
  EXPECT_EQ(first, "{\"k\":\"v\"}");
  // Memoized: same bytes object on every access.
  EXPECT_EQ(&m.body(), &first);
  EXPECT_EQ(m.shared_body().use_count(), 1);
}

TEST(Message, PayloadParsesLazilyFromBytesAndMemoizes) {
  Message m;
  m.set_body("{\"n\":7}");
  EXPECT_FALSE(m.has_payload());
  const auto& p1 = m.payload();
  EXPECT_TRUE(m.has_payload());
  EXPECT_EQ(p1->at("n").as_int(), 7);
  EXPECT_EQ(m.payload().get(), p1.get());  // parsed once
}

TEST(Message, CopiesShareRepresentationsByRefcount) {
  json::Value payload;
  payload["big"] = std::string(1024, 'x');
  Message a = Message::json_body("route", std::move(payload));
  Message b = a;  // broker hop: queue retention / delivery copy
  EXPECT_EQ(a.payload().get(), b.payload().get());  // same shared value
  b.body();                       // rendering on the copy...
  EXPECT_FALSE(a.has_rendered_body());  // ...does not mutate the original
}

TEST(Message, SettersResetTheOtherRepresentation) {
  json::Value payload;
  payload["a"] = 1;
  Message m = Message::json_body("route", std::move(payload));
  m.body();
  m.set_body("{\"b\":2}");  // new bytes invalidate the memoized payload
  EXPECT_FALSE(m.has_payload());
  EXPECT_EQ(m.payload()->at("b").as_int(), 2);
  json::Value other;
  other["c"] = 3;
  m.set_payload(std::move(other));  // new payload invalidates the bytes
  EXPECT_FALSE(m.has_rendered_body());
  EXPECT_EQ(m.body(), "{\"c\":3}");
}

TEST(Message, EmptyMessageBodyEmptyPayloadThrows) {
  Message m;
  EXPECT_EQ(m.body(), "");
  EXPECT_THROW(m.payload(), json::ParseError);
}

TEST(Message, EagerSerializationKnobRestoresSeedBehavior) {
  set_eager_serialization(true);
  json::Value payload;
  payload["x"] = 1;
  Message m = Message::json_body("route", std::move(payload));
  set_eager_serialization(false);
  EXPECT_TRUE(m.has_rendered_body());   // rendered at construction
  EXPECT_FALSE(m.has_payload());        // consumers must re-parse
  EXPECT_EQ(m.payload()->at("x").as_int(), 1);
}

TEST(Broker, DeliveryAvoidsSerializationEndToEnd) {
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  Broker b;
  b.set_metrics(metrics);
  b.declare_queue("q");
  json::Value payload;
  payload["uid"] = "t1";
  b.publish("q", Message::json_body("q", std::move(payload)));
  auto d = b.get("q", 0.0);
  ASSERT_TRUE(d);
  // The whole hop crossed by refcount bump: the payload is present, no
  // byte body was ever rendered, and the broker counted the avoided pair.
  EXPECT_TRUE(d->message.has_payload());
  EXPECT_FALSE(d->message.has_rendered_body());
  EXPECT_EQ(d->message.payload()->get_string("uid", ""), "t1");
  EXPECT_EQ(metrics->counter("mq.serialize_avoided").value(), 1u);
}

TEST(Broker, DurablePublishRendersOnceAndIsNotCountedAvoided) {
  const std::string dir = fresh_dir();
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  Broker b("dur1", dir);
  b.set_metrics(metrics);
  b.declare_queue("q", {.durable = true});
  json::Value payload;
  payload["uid"] = "t1";
  b.publish("q", Message::json_body("q", std::move(payload)));
  auto d = b.get("q", 0.0);
  ASSERT_TRUE(d);
  // Journaling forced one render; the delivery carries both representations
  // and honestly does not count as serialize-avoided.
  EXPECT_TRUE(d->message.has_rendered_body());
  EXPECT_EQ(metrics->counter("mq.serialize_avoided").value(), 0u);
}

// ------------------------------------------------- group-commit journal --

TEST(Journal, SizeTriggerFlushesFullBatches) {
  const std::string path = fresh_dir() + "/j.journal";
  JournalWriter w(path, {.max_batch_bytes = 64, .max_delay_s = 30.0});
  const std::string rec(31, 'a');  // two records cross the 64-byte trigger
  w.append(rec);
  w.append(rec);
  w.append(rec);
  w.flush();  // barrier: everything appended is on disk afterwards
  EXPECT_EQ(w.appended_records(), 3u);
  EXPECT_EQ(w.flushed_records(), 3u);
  w.close();
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 3u);
}

TEST(Journal, DeadlineTriggerFlushesWithoutReachingSize) {
  const std::string path = fresh_dir() + "/j.journal";
  // Huge size trigger: only the 5ms commit window can cause the flush.
  JournalWriter w(path, {.max_batch_bytes = 1 << 20, .max_delay_s = 0.005});
  w.append("r1");
  for (int spin = 0; spin < 400 && w.flushed_records() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(w.flushed_records(), 1u);
  EXPECT_GE(w.flushes(), 1u);
  w.close();
}

TEST(Journal, CloseDrainsPendingSegment) {
  const std::string path = fresh_dir() + "/j.journal";
  {
    // Neither trigger can fire during the test; only close() flushes.
    JournalWriter w(path, {.max_batch_bytes = 1 << 20, .max_delay_s = 60.0});
    w.append("alpha");
    w.append("beta");
    w.close();
    EXPECT_EQ(w.flushed_records(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "alpha");
  std::getline(in, line);
  EXPECT_EQ(line, "beta");
}

TEST(Journal, SyncEveryAppendRestoresPerRecordFlush) {
  const std::string path = fresh_dir() + "/j.journal";
  JournalWriter w(path, {.sync_every_append = true});
  w.append("r1");
  EXPECT_EQ(w.flushed_records(), 1u);  // on disk before append returned
  w.append("r2");
  EXPECT_EQ(w.flushed_records(), 2u);
  EXPECT_EQ(w.flushes(), 2u);
  w.close();
}

TEST(Journal, AppendAfterCloseThrows) {
  const std::string path = fresh_dir() + "/j.journal";
  JournalWriter w(path, {});
  w.append("r1");
  w.close();
  EXPECT_THROW(w.append("r2"), MqError);
  w.close();  // idempotent
}

TEST(Journal, UnopenablePathThrowsOnConstruction) {
  EXPECT_THROW(
      JournalWriter("/nonexistent-entk-dir/x.journal", JournalConfig{}),
      MqError);
}

TEST(Journal, WriteFailureSurfacesAsStickyMqError) {
  // /dev/full accepts the fopen but fails every flush with ENOSPC —
  // exactly the short-write path a full disk would produce. (A read-only
  // directory cannot be used here: tests may run as root, which bypasses
  // permission checks.)
  if (!std::filesystem::exists("/dev/full")) GTEST_SKIP();
  JournalWriter w("/dev/full", {.sync_every_append = true});
  EXPECT_THROW(w.append("r1"), MqError);
  EXPECT_THROW(w.append("r2"), MqError);  // sticky: still failing
  EXPECT_THROW(w.flush(), MqError);
  EXPECT_THROW(w.close(), MqError);       // the error surfaces at close too
}

TEST(Broker, JournalErrorPropagatesToDurablePublish) {
  EXPECT_THROW(Broker("b", "/nonexistent-entk-dir"), MqError);
}

TEST(Broker, GroupCommitCleanCloseLosesNothing) {
  const std::string dir = fresh_dir();
  std::string journal;
  {
    // Triggers never fire during the run: only the close-time drain can
    // put the records on disk.
    Broker b("gc1", dir,
             {.max_batch_bytes = 1 << 20, .max_delay_s = 60.0});
    journal = b.journal_path();
    b.declare_queue("q", {.durable = true});
    for (int i = 0; i < 8; ++i) {
      b.publish("q", text_message("m" + std::to_string(i)));
    }
    auto d = b.get("q", 0.0);
    ASSERT_TRUE(d);
    b.ack("q", d->delivery_tag);
  }  // destructor closes the broker, draining the journal
  Broker recovered("gc1b");
  EXPECT_EQ(recovered.recover(journal), 7u);
  for (int i = 1; i < 8; ++i) {
    auto d = recovered.get("q", 0.0);
    ASSERT_TRUE(d);
    EXPECT_EQ(d->message.body(), "m" + std::to_string(i));
  }
}

TEST(Broker, CrashMidBatchReplaysFlushedRecordsExactlyOnce) {
  const std::string dir = fresh_dir();
  Broker b("gc2", dir, {.max_batch_bytes = 1 << 20, .max_delay_s = 60.0});
  const std::string journal = b.journal_path();
  b.declare_queue("q", {.durable = true});
  // Five publishes reach disk through an explicit barrier...
  for (int i = 0; i < 5; ++i) {
    b.publish("q", text_message("m" + std::to_string(i)));
  }
  ASSERT_NE(b.journal_writer(), nullptr);
  b.journal_writer()->flush();
  // ...two acks reach disk through a second barrier...
  for (int i = 0; i < 2; ++i) {
    auto d = b.get("q", 0.0);
    ASSERT_TRUE(d);
    b.ack("q", d->delivery_tag);
  }
  b.journal_writer()->flush();
  // ...and two more publishes stay in the in-memory segment when the
  // broker dies hard (bounded-loss tail of the durability contract).
  b.publish("q", text_message("lost1"));
  b.publish("q", text_message("lost2"));
  b.journal_writer()->simulate_crash();
  // A record torn mid-write trails the journal, as after a real SIGKILL.
  {
    std::FILE* f = std::fopen(journal.c_str(), "a");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"op\":\"pub\",\"q\":\"q\",\"se", f);
    std::fclose(f);
  }
  Broker recovered("gc2b");
  // Exactly the flushed, unacked records come back — each once: no
  // duplicate of the acked m0/m1, no resurrected unflushed tail.
  EXPECT_EQ(recovered.recover(journal), 3u);
  for (int i = 2; i < 5; ++i) {
    auto d = recovered.get("q", 0.0);
    ASSERT_TRUE(d);
    EXPECT_EQ(d->message.body(), "m" + std::to_string(i));
  }
  EXPECT_FALSE(recovered.get("q", 0.0).has_value());
}

TEST(Broker, JournalBatchSizeHistogramObservesFlushes) {
  const std::string dir = fresh_dir();
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  Broker b("gc3", dir, {.max_batch_bytes = 1 << 20, .max_delay_s = 60.0});
  b.set_metrics(metrics);
  b.declare_queue("q", {.durable = true});
  std::vector<Message> batch;
  for (int i = 0; i < 4; ++i) batch.push_back(text_message("x"));
  b.publish_batch("q", std::move(batch));
  b.journal_writer()->flush();
  auto& hist = metrics->histogram("mq.journal_batch_size");
  EXPECT_EQ(hist.count(), 1u);         // one group-commit flush...
  EXPECT_EQ(hist.sum(), 4.0);          // ...carrying all four records
}

// ------------------------------------------------------- sharded broker
//
// The same broker surface at every shard count: the suite runs each
// behavioral test at shards=1 (the historical single-shard broker) and
// shards=4, and separately asserts cross-shard aggregation parity.

class ShardedBroker : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardedBroker, ShardOfIsStableAndInRange) {
  Broker b("sh", "", {}, GetParam());
  EXPECT_EQ(b.shard_count(), GetParam());
  for (int q = 0; q < 64; ++q) {
    const std::string name = "queue" + std::to_string(q);
    const std::size_t shard = b.shard_of(name);
    EXPECT_LT(shard, b.shard_count());
    EXPECT_EQ(b.shard_of(name), shard);  // deterministic
  }
}

TEST_P(ShardedBroker, PublishGetAckAcrossManyQueues) {
  Broker b("sh", "", {}, GetParam());
  constexpr int kQueues = 16;
  for (int q = 0; q < kQueues; ++q) {
    b.declare_queue("q" + std::to_string(q));
  }
  for (int q = 0; q < kQueues; ++q) {
    for (int i = 0; i <= q; ++i) {
      b.publish("q" + std::to_string(q),
                text_message(std::to_string(q) + ":" + std::to_string(i)));
    }
  }
  for (int q = 0; q < kQueues; ++q) {
    const std::string name = "q" + std::to_string(q);
    for (int i = 0; i <= q; ++i) {
      auto d = b.get(name, 0.0);
      ASSERT_TRUE(d);
      EXPECT_EQ(d->message.body(),
                std::to_string(q) + ":" + std::to_string(i));
      b.ack(name, d->delivery_tag);
    }
    EXPECT_FALSE(b.get(name, 0.0).has_value());
  }
  const BrokerStats stats = b.stats();
  EXPECT_EQ(stats.published, std::size_t{kQueues * (kQueues + 1) / 2});
  EXPECT_EQ(stats.acked, stats.published);
}

TEST_P(ShardedBroker, SequenceNumbersUniqueAcrossShards) {
  Broker b("sh", "", {}, GetParam());
  std::set<std::uint64_t> seqs;
  for (int q = 0; q < 8; ++q) {
    const std::string name = "q" + std::to_string(q);
    b.declare_queue(name);
    for (int i = 0; i < 8; ++i) b.publish(name, text_message("x"));
    while (auto d = b.get(name, 0.0)) {
      EXPECT_TRUE(seqs.insert(d->message.seq).second)
          << "duplicate seq " << d->message.seq;
      b.ack(name, d->delivery_tag);
    }
  }
  EXPECT_EQ(seqs.size(), 64u);
}

TEST_P(ShardedBroker, ConcurrentTrafficAcrossShardsLosesNothing) {
  Broker b("sh", "", {}, GetParam());
  constexpr int kQueues = 4;
  constexpr int kPerQueue = 300;
  for (int q = 0; q < kQueues; ++q) b.declare_queue("w" + std::to_string(q));
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int q = 0; q < kQueues; ++q) {
    threads.emplace_back([&b, q] {
      const std::string name = "w" + std::to_string(q);
      for (int i = 0; i < kPerQueue; ++i) b.publish(name, text_message("m"));
    });
    threads.emplace_back([&b, &consumed, q] {
      const std::string name = "w" + std::to_string(q);
      int got = 0;
      while (got < kPerQueue) {
        auto d = b.get(name, 0.001);
        if (d) {
          b.ack(name, d->delivery_tag);
          ++got;
          ++consumed;
        }
      }
    });
  }
  // Topology churn while traffic flows: per-shard copy-on-write snapshots
  // must never disturb established queues.
  threads.emplace_back([&b] {
    for (int i = 0; i < 50; ++i) {
      const std::string name = "churn" + std::to_string(i);
      b.declare_queue(name);
      b.delete_queue(name);
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(consumed.load(), kQueues * kPerQueue);
  EXPECT_EQ(b.stats().acked, std::size_t{kQueues * kPerQueue});
}

TEST_P(ShardedBroker, DepthSnapshotParityWithSingleShard) {
  // Identical traffic into a 1-shard and an N-shard broker must aggregate
  // to identical snapshots, stats, and queue name sets.
  Broker single("one", "", {}, 1);
  Broker sharded("many", "", {}, GetParam());
  for (Broker* b : {&single, &sharded}) {
    for (int q = 0; q < 12; ++q) {
      const std::string name = "p" + std::to_string(q);
      b->declare_queue(name);
      for (int i = 0; i < q; ++i) b->publish(name, text_message("x"));
    }
    // Leave p3 with one unacked delivery.
    auto d = b->get("p3", 0.0);
    ASSERT_TRUE(d);
  }
  EXPECT_EQ(single.queue_names(), sharded.queue_names());
  const auto s1 = single.depth_snapshot();
  const auto sn = sharded.depth_snapshot();
  ASSERT_EQ(s1.size(), sn.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].queue, sn[i].queue);
    EXPECT_EQ(s1[i].ready, sn[i].ready) << "queue " << s1[i].queue;
    EXPECT_EQ(s1[i].unacked, sn[i].unacked) << "queue " << s1[i].queue;
  }
  const BrokerStats b1 = single.stats();
  const BrokerStats bn = sharded.stats();
  EXPECT_EQ(b1.published, bn.published);
  EXPECT_EQ(b1.delivered, bn.delivered);
  EXPECT_EQ(b1.acked, bn.acked);
  EXPECT_EQ(b1.queues, bn.queues);
}

TEST_P(ShardedBroker, JournalFilePerShardAndRecoveryAcrossLayouts) {
  const std::string dir = fresh_dir();
  std::string journal;
  constexpr int kQueues = 6;
  {
    Broker b("shj", dir, {}, GetParam());
    journal = b.journal_path();
    // Shard 0 keeps the historical journal path; shard K appends ".K".
    for (std::size_t s = 0; s < b.shard_count(); ++s) {
      const std::string path = b.journal_path(s);
      EXPECT_EQ(path, s == 0 ? journal
                             : journal + "." + std::to_string(s));
      EXPECT_TRUE(std::filesystem::exists(path));
    }
    for (int q = 0; q < kQueues; ++q) {
      const std::string name = "d" + std::to_string(q);
      b.declare_queue(name, {.durable = true});
      for (int i = 0; i < 3; ++i) {
        b.publish(name, text_message(name + ":" + std::to_string(i)));
      }
      // Ack one message per queue; two per queue must survive.
      auto d = b.get(name, 0.0);
      ASSERT_TRUE(d);
      b.ack(name, d->delivery_tag);
    }
    // Broker "dies" here without close(): group-commit journals flush on
    // destruction like a clean close would.
  }
  // Recover into a broker with a DIFFERENT shard count: the journal file
  // set describes queue traffic, not shard layout, so the restored state
  // must not depend on either broker's sharding.
  Broker recovered("shj2", "", {}, 2);
  EXPECT_EQ(recovered.recover(journal), std::size_t{kQueues * 2});
  for (int q = 0; q < kQueues; ++q) {
    const std::string name = "d" + std::to_string(q);
    for (int i = 1; i < 3; ++i) {
      auto d = recovered.get(name, 0.0);
      ASSERT_TRUE(d) << name;
      EXPECT_EQ(d->message.body(), name + ":" + std::to_string(i));
    }
    EXPECT_FALSE(recovered.get(name, 0.0).has_value());
  }
}

TEST_P(ShardedBroker, CloseClosesEveryShardJournal) {
  const std::string dir = fresh_dir();
  Broker b("shc", dir, {}, GetParam());
  b.declare_queue("q", {.durable = true});
  b.publish("q", text_message("x"));
  b.close();
  EXPECT_THROW(b.publish("q", text_message("y")), MqError);
  for (std::size_t s = 0; s < b.shard_count(); ++s) {
    EXPECT_TRUE(std::filesystem::exists(b.journal_path(s)));
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardedBroker,
                         ::testing::Values(std::size_t{1}, std::size_t{4}),
                         [](const auto& info) {
                           return "shards" + std::to_string(info.param);
                         });

TEST(Broker, DefaultShardsBoundedByHardware) {
  const std::size_t n = Broker::default_shards();
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 16u);
  // shards=0 resolves to the hardware-derived default.
  Broker b("auto", "", {}, 0);
  EXPECT_EQ(b.shard_count(), n);
}

TEST(Broker, PerShardPublishCountersOnlyCountWhenSharded) {
  // A single-shard broker keeps the historical metric surface: no
  // mq.shardK.* counters move.
  auto metrics1 = std::make_shared<obs::MetricsRegistry>();
  Broker single("m1", "", {}, 1);
  single.set_metrics(metrics1);
  single.declare_queue("q");
  single.publish("q", text_message("x"));
  EXPECT_EQ(metrics1->counter("mq.shard0.published").value(), 0u);

  auto metrics4 = std::make_shared<obs::MetricsRegistry>();
  Broker sharded("m4", "", {}, 4);
  sharded.set_metrics(metrics4);
  sharded.declare_queue("q");
  sharded.publish("q", text_message("x"));
  const std::size_t shard = sharded.shard_of("q");
  EXPECT_EQ(metrics4
                ->counter("mq.shard" + std::to_string(shard) + ".published")
                .value(),
            1u);
}

}  // namespace
}  // namespace entk::mq
