// Unit tests for the core toolkit pieces: PST descriptions and validation,
// the transactional state store, the sync protocol, and overhead
// computation.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "src/core/overheads.hpp"
#include "src/core/state_store.hpp"
#include "src/core/sync.hpp"

namespace entk {
namespace {

std::string fresh_dir() {
  const std::string dir = ::testing::TempDir() + "/entk_core_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(wall_now_us());
  std::filesystem::create_directories(dir);
  return dir;
}

// ------------------------------------------------------------------ PST

TEST(TaskDescription, ValidationRules) {
  Task t("t");
  EXPECT_THROW(t.validate(), MissingError);  // nothing to execute
  t.executable = "/bin/sleep";
  EXPECT_NO_THROW(t.validate());
  t.cpu_reqs.processes = 0;
  EXPECT_THROW(t.validate(), ValueError);
  t.cpu_reqs.processes = 2;
  t.cpu_reqs.threads_per_process = 4;
  EXPECT_EQ(t.cpu_reqs.total(), 8);
  t.duration_s = -1;
  EXPECT_THROW(t.validate(), ValueError);
  t.duration_s = 0;
  t.gpu_reqs.processes = -1;
  EXPECT_THROW(t.validate(), ValueError);
  t.gpu_reqs.processes = 0;
  t.retry_limit = -2;
  EXPECT_THROW(t.validate(), ValueError);
}

TEST(TaskDescription, FunctionOrDurationSuffices) {
  Task f;
  f.function = [] { return 0; };
  EXPECT_NO_THROW(f.validate());
  Task d;
  d.duration_s = 5.0;
  EXPECT_NO_THROW(d.validate());
}

TEST(TaskDescription, UidsAreUniqueAndJsonComplete) {
  Task a("a"), b("b");
  EXPECT_NE(a.uid(), b.uid());
  a.executable = "x";
  a.arguments = {"1", "2"};
  a.metadata["m"] = 3;
  const json::Value v = a.to_json();
  EXPECT_EQ(v.at("name").as_string(), "a");
  EXPECT_EQ(v.at("state").as_string(), "DESCRIBED");
  EXPECT_EQ(v.at("arguments").size(), 2u);
  EXPECT_EQ(v.at("metadata").at("m").as_int(), 3);
}

TEST(StageDescription, ValidationAndParents) {
  Stage s("s");
  EXPECT_THROW(s.validate(), MissingError);  // no tasks
  EXPECT_THROW(s.add_task(nullptr), ValueError);
  auto t = std::make_shared<Task>("t");
  t->duration_s = 1;
  s.add_task(t);
  EXPECT_NO_THROW(s.validate());
  s.set_parent("pipeline.X");
  EXPECT_EQ(t->parent_stage(), s.uid());
  EXPECT_EQ(t->parent_pipeline(), "pipeline.X");
}

TEST(PipelineDescription, StageOrderAndAdvance) {
  Pipeline p("p");
  EXPECT_THROW(p.validate(), MissingError);
  auto s1 = std::make_shared<Stage>("s1");
  auto s2 = std::make_shared<Stage>("s2");
  auto t = std::make_shared<Task>();
  t->duration_s = 1;
  s1->add_task(t);
  auto t2 = std::make_shared<Task>();
  t2->duration_s = 1;
  s2->add_task(t2);
  p.add_stage(s1);
  p.add_stage(s2);
  EXPECT_EQ(p.stage_count(), 2u);
  EXPECT_EQ(p.task_count(), 2u);
  EXPECT_EQ(p.current_stage(), s1);
  EXPECT_EQ(p.advance(), s2);
  EXPECT_EQ(p.advance(), nullptr);
  EXPECT_EQ(p.current_stage(), nullptr);
  EXPECT_EQ(p.stage_at(0), s1);
  EXPECT_EQ(p.stage_at(5), nullptr);
}

TEST(PipelineDescription, NoExtensionAfterFinal) {
  Pipeline p("p");
  auto s = std::make_shared<Stage>();
  auto t = std::make_shared<Task>();
  t->duration_s = 1;
  s->add_task(t);
  p.add_stage(s);
  p.set_state(PipelineState::Done);
  EXPECT_THROW(p.add_stage(std::make_shared<Stage>()), StateError);
}

// ----------------------------------------------------------- StateStore

TEST(StateStoreTest, CommitAndQuery) {
  StateStore store;
  store.commit("task.1", "task", "DESCRIBED", "SCHEDULING", "wfp");
  store.commit("task.1", "task", "SCHEDULING", "SCHEDULED", "wfp");
  EXPECT_EQ(store.state_of("task.1"), "SCHEDULED");
  EXPECT_EQ(store.state_of("unknown"), "");
  EXPECT_EQ(store.transaction_count(), 2u);
  const auto history = store.history();
  EXPECT_EQ(history[0].seq, 1u);
  EXPECT_EQ(history[1].seq, 2u);
  EXPECT_EQ(history[1].component, "wfp");
}

TEST(StateStoreTest, DurableRecovery) {
  const std::string path = fresh_dir() + "/states.jsonl";
  {
    StateStore store(path);
    store.commit("p.1", "pipeline", "DESCRIBED", "SCHEDULING", "wfp");
    store.commit("p.1", "pipeline", "SCHEDULING", "DONE", "wfp");
  }
  StateStore recovered;
  EXPECT_EQ(recovered.recover(path), 2u);
  EXPECT_EQ(recovered.state_of("p.1"), "DONE");
  // New commits continue the sequence.
  const auto seq = recovered.commit("p.2", "pipeline", "DESCRIBED",
                                    "SCHEDULING", "wfp");
  EXPECT_EQ(seq, 3u);
}

TEST(StateStoreTest, RecoveryStopsAtTornRecord) {
  const std::string path = fresh_dir() + "/torn.jsonl";
  {
    StateStore store(path);
    store.commit("a", "task", "DESCRIBED", "SCHEDULING", "c");
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "a");
    std::fputs("{\"seq\":2,\"uid\":\"a\",\"to\":\"SCHE", f);
    std::fclose(f);
  }
  StateStore recovered;
  EXPECT_EQ(recovered.recover(path), 1u);
  EXPECT_EQ(recovered.state_of("a"), "SCHEDULING");
}

TEST(StateStoreTest, GroupCommitCrashLosesOnlyUnflushedTail) {
  const std::string path = fresh_dir() + "/crash.jsonl";
  mq::JournalConfig journal;
  journal.max_batch_bytes = 1 << 20;
  journal.max_delay_s = 60.0;  // background flusher never fires in-test
  StateStore store(path, journal);
  store.commit("a", "task", "DESCRIBED", "SCHEDULING", "c");
  store.commit("a", "task", "SCHEDULING", "SCHEDULED", "c");
  store.flush();  // durability barrier: the first two records are on disk
  store.commit("a", "task", "SCHEDULED", "SUBMITTED", "c");
  // Hard crash: the unflushed tail is gone, exactly what SIGKILL leaves.
  store.journal_writer()->simulate_crash();
  StateStore recovered;
  EXPECT_EQ(recovered.recover(path), 2u);
  EXPECT_EQ(recovered.state_of("a"), "SCHEDULED");
}

TEST(StateStoreTest, SyncEveryAppendCommitsAreCrashDurable) {
  const std::string path = fresh_dir() + "/sync.jsonl";
  mq::JournalConfig journal;
  journal.sync_every_append = true;  // the --journal-max-delay-ms 0 policy
  StateStore store(path, journal);
  store.commit("a", "task", "DESCRIBED", "SCHEDULING", "c");
  store.commit("a", "task", "SCHEDULING", "SCHEDULED", "c");
  store.journal_writer()->simulate_crash();  // no barrier needed
  StateStore recovered;
  EXPECT_EQ(recovered.recover(path), 2u);
  EXPECT_EQ(recovered.state_of("a"), "SCHEDULED");
}

TEST(StateStoreTest, ExternalSinkInvoked) {
  StateStore store;
  std::vector<std::string> sunk;
  store.set_external_sink(
      [&](const StateTransaction& t) { sunk.push_back(t.uid); });
  store.commit("x", "task", "A", "B", "c");
  ASSERT_EQ(sunk.size(), 1u);
  EXPECT_EQ(sunk[0], "x");
}

// ------------------------------------------------------- Sync protocol

class SyncFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_shared<mq::Broker>("sync_test");
    broker_->declare_queue("q.states");
    auto pipeline = std::make_shared<Pipeline>("p");
    stage_ = std::make_shared<Stage>("s");
    task_ = std::make_shared<Task>("t");
    task_->duration_s = 1;
    stage_->add_task(task_);
    pipeline->add_stage(stage_);
    pipeline_ = pipeline;
    registry_.add_pipeline(pipeline);
    sync_ = std::make_unique<Synchronizer>(broker_, "q.states", &registry_,
                                           &store_, profiler_);
    sync_->start();
  }

  void TearDown() override {
    sync_->stop();
    broker_->close();
  }

  mq::BrokerPtr broker_;
  ObjectRegistry registry_;
  StateStore store_;
  ProfilerPtr profiler_ = std::make_shared<Profiler>();
  std::unique_ptr<Synchronizer> sync_;
  PipelinePtr pipeline_;
  StagePtr stage_;
  TaskPtr task_;
};

TEST_F(SyncFixture, ValidTransitionAppliedAndCommitted) {
  SyncClient client(broker_, "test", "q.states", "q.ack.test");
  EXPECT_TRUE(client.sync(task_->uid(), "task", "DESCRIBED", "SCHEDULING",
                          true));
  EXPECT_EQ(task_->state(), TaskState::Scheduling);
  EXPECT_EQ(store_.state_of(task_->uid()), "SCHEDULING");
  EXPECT_EQ(sync_->processed(), 1u);
}

TEST_F(SyncFixture, InvalidTransitionRejected) {
  SyncClient client(broker_, "test", "q.states", "q.ack.test");
  EXPECT_FALSE(client.sync(task_->uid(), "task", "DESCRIBED", "DONE", true));
  EXPECT_EQ(task_->state(), TaskState::Described);
  EXPECT_EQ(store_.transaction_count(), 0u);
  EXPECT_EQ(sync_->rejected(), 1u);
}

TEST_F(SyncFixture, StaleFromStateRejected) {
  SyncClient client(broker_, "test", "q.states", "q.ack.test");
  ASSERT_TRUE(client.sync(task_->uid(), "task", "DESCRIBED", "SCHEDULING",
                          true));
  // A second component believing the task is still DESCRIBED loses.
  EXPECT_FALSE(client.sync(task_->uid(), "task", "DESCRIBED", "SCHEDULING",
                           true));
}

TEST_F(SyncFixture, UnknownObjectRejected) {
  SyncClient client(broker_, "test", "q.states", "q.ack.test");
  EXPECT_FALSE(client.sync("task.9999x", "task", "DESCRIBED", "SCHEDULING",
                           true));
  EXPECT_FALSE(client.sync(task_->uid(), "nonsense", "A", "B", true));
}

TEST_F(SyncFixture, StageAndPipelineTransitions) {
  SyncClient client(broker_, "test", "q.states", "q.ack.test");
  EXPECT_TRUE(client.sync(pipeline_->uid(), "pipeline", "DESCRIBED",
                          "SCHEDULING", true));
  EXPECT_EQ(pipeline_->state(), PipelineState::Scheduling);
  EXPECT_TRUE(client.sync(stage_->uid(), "stage", "DESCRIBED", "SCHEDULING",
                          true));
  EXPECT_TRUE(
      client.sync(stage_->uid(), "stage", "SCHEDULING", "SCHEDULED", true));
  EXPECT_EQ(stage_->state(), StageState::Scheduled);
}

TEST_F(SyncFixture, FireAndForgetEventuallyApplies) {
  SyncClient client(broker_, "test", "q.states", "q.ack.test");
  client.sync(task_->uid(), "task", "DESCRIBED", "SCHEDULING", false);
  for (int spin = 0; spin < 500 && task_->state() != TaskState::Scheduling;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(task_->state(), TaskState::Scheduling);
}

TEST(ObjectRegistryTest, LookupAndRuntimeStageAddition) {
  ObjectRegistry registry;
  auto p = std::make_shared<Pipeline>("p");
  auto s = std::make_shared<Stage>("s");
  auto t = std::make_shared<Task>("t");
  t->duration_s = 1;
  s->add_task(t);
  p->add_stage(s);
  registry.add_pipeline(p);
  EXPECT_EQ(registry.pipeline(p->uid()), p);
  EXPECT_EQ(registry.stage(s->uid()), s);
  EXPECT_EQ(registry.task(t->uid()), t);
  EXPECT_EQ(registry.task("nope"), nullptr);
  EXPECT_EQ(registry.task_count(), 1u);

  auto s2 = std::make_shared<Stage>("late");
  auto t2 = std::make_shared<Task>("t2");
  t2->duration_s = 1;
  s2->add_task(t2);
  p->add_stage(s2);
  registry.add_stage(s2);
  EXPECT_EQ(registry.stage(s2->uid()), s2);
  EXPECT_EQ(registry.task(t2->uid()), t2);
}

// -------------------------------------------------------- Overheads

TEST(Overheads, ComputedFromProfilerEvents) {
  Profiler p;
  // RTS lifecycle at virtual times.
  p.record("rts", "rts_init_start", "", 0.0);
  p.record("rts", "rts_init_stop", "", 30.0);
  p.record("umgr", "unit_submit", "u1", 31.0);
  p.record("agent", "unit_received", "u1", 31.0);
  p.record("agent", "unit_stage_in_start", "u1", 31.0);
  p.record("agent", "unit_stage_in_stop", "u1", 33.0);
  p.record("agent", "unit_exec_start", "u1", 35.0);
  p.record("agent", "unit_exec_stop", "u1", 135.0);
  p.record("agent", "unit_done", "u1", 136.0);
  p.record("rts", "rts_teardown_start", "", 140.0);
  p.record("rts", "rts_teardown_stop", "", 155.0);

  OverheadInputs in;
  in.setup_wall_s = 0.002;
  in.mgmt_wall_s = 0.010;
  in.teardown_wall_s = 0.001;
  in.tasks_processed = 1;
  in.host.factor = 1.0;

  const OverheadReport r = compute_overheads(p, in);
  EXPECT_DOUBLE_EQ(r.task_exec_s, 100.0);
  EXPECT_DOUBLE_EQ(r.staging_s, 2.0);
  EXPECT_DOUBLE_EQ(r.rts_teardown_s, 15.0);
  // rts_init 30 + lead-in (35-31-2=2) + lead-out (136-135=1).
  EXPECT_NEAR(r.rts_overhead_s, 33.0, 1e-9);
  // Host model: setup 0.1, mgmt ~9.5005, teardown 5.
  EXPECT_NEAR(r.entk_setup_s, 0.102, 1e-9);
  EXPECT_NEAR(r.entk_mgmt_s, 9.5005 + 0.010, 1e-9);
  EXPECT_NEAR(r.entk_teardown_s, 5.001, 1e-9);
  EXPECT_FALSE(r.to_table().empty());
}

TEST(Overheads, TitanHostFactorShrinksEnTKOverheads) {
  Profiler p;
  OverheadInputs vm;
  vm.tasks_processed = 16;
  vm.host.factor = 1.0;
  OverheadInputs titan = vm;
  titan.host.factor = 0.3;
  const OverheadReport rv = compute_overheads(p, vm);
  const OverheadReport rt = compute_overheads(p, titan);
  EXPECT_LT(rt.entk_setup_s, rv.entk_setup_s);
  EXPECT_LT(rt.entk_mgmt_s, rv.entk_mgmt_s);
  EXPECT_LT(rt.entk_teardown_s, rv.entk_teardown_s);
  EXPECT_NEAR(rt.entk_mgmt_s / rv.entk_mgmt_s, 0.3, 0.01);
}

TEST(Overheads, EmptyProfilerYieldsZeroWorkloadTimes) {
  Profiler p;
  OverheadInputs in;
  const OverheadReport r = compute_overheads(p, in);
  EXPECT_DOUBLE_EQ(r.task_exec_s, 0.0);
  EXPECT_DOUBLE_EQ(r.staging_s, 0.0);
  EXPECT_DOUBLE_EQ(r.rts_overhead_s, 0.0);
}

}  // namespace
}  // namespace entk
