// Coverage for public-API corners not exercised elsewhere: JSON views of
// PST objects, broker introspection, filesystem statistics, report
// rendering.
#include <gtest/gtest.h>

#include "src/core/overheads.hpp"
#include "src/core/pipeline.hpp"
#include "src/mq/broker.hpp"
#include "src/sim/filesystem.hpp"

namespace entk {
namespace {

TEST(JsonViews, TaskSerializationFlagsFunctionPresence) {
  Task plain("plain");
  plain.executable = "sleep";
  EXPECT_FALSE(plain.to_json().get_bool("has_function", true));
  Task coded("coded");
  coded.function = [] { return 0; };
  EXPECT_TRUE(coded.to_json().get_bool("has_function", false));
}

TEST(JsonViews, StageAndPipelineSerializeTree) {
  auto pipeline = std::make_shared<Pipeline>("tree");
  auto stage = std::make_shared<Stage>("leafs");
  auto t1 = std::make_shared<Task>("a");
  t1->duration_s = 1;
  auto t2 = std::make_shared<Task>("b");
  t2->duration_s = 2;
  stage->add_task(t1);
  stage->add_task(t2);
  pipeline->add_stage(stage);

  const json::Value v = pipeline->to_json();
  EXPECT_EQ(v.at("name").as_string(), "tree");
  EXPECT_EQ(v.at("state").as_string(), "DESCRIBED");
  EXPECT_EQ(v.at("current_stage").as_int(), 0);
  ASSERT_EQ(v.at("stages").size(), 1u);
  const json::Value& sv = v.at("stages").as_array()[0];
  EXPECT_EQ(sv.at("parent_pipeline").as_string(), pipeline->uid());
  ASSERT_EQ(sv.at("tasks").size(), 2u);
  EXPECT_EQ(sv.at("tasks").as_array()[0].at("parent_stage").as_string(),
            stage->uid());
  // Round-trippable as a document.
  EXPECT_NO_THROW(json::parse(v.dump(2)));
}

TEST(BrokerIntrospection, QueueNamesSorted) {
  mq::Broker b;
  b.declare_queue("zeta");
  b.declare_queue("alpha");
  b.declare_queue("mid");
  EXPECT_EQ(b.queue_names(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(QueueStatsCounters, TrackLifecycle) {
  mq::Queue q("q", {});
  mq::Message m;
  m.set_body("x");
  q.publish(m);
  q.publish(m);
  auto d = q.try_get();
  q.nack(d->delivery_tag, true);  // requeued
  d = q.try_get();
  q.ack(d->delivery_tag);
  const mq::QueueStats s = q.stats();
  EXPECT_EQ(s.published, 2u);
  EXPECT_EQ(s.delivered, 2u);
  EXPECT_EQ(s.acked, 1u);
  EXPECT_EQ(s.requeued, 1u);
  EXPECT_EQ(s.ready, 1u);
  EXPECT_EQ(s.unacked, 0u);
}

TEST(FilesystemStats, AccumulateBusyTime) {
  sim::FilesystemSpec spec;
  spec.latency_s = 0.5;
  spec.bandwidth_bps = 1e9;
  sim::SharedFilesystem fs(spec);
  fs.charge(sim::FsOp::Copy, 0);
  fs.charge(sim::FsOp::Copy, 0);
  const sim::FilesystemStats s = fs.stats();
  EXPECT_EQ(s.ops, 2u);
  EXPECT_NEAR(s.busy_virtual_s, 1.0, 1e-9);
  EXPECT_EQ(s.in_flight, 0);
}

TEST(OverheadRendering, TableContainsAllCategories) {
  OverheadReport r;
  r.entk_setup_s = 0.1;
  r.entk_mgmt_s = 9.5;
  r.rts_overhead_s = 25.0;
  r.task_exec_s = 300.0;
  r.tasks_done = 16;
  const std::string table = r.to_table();
  for (const char* needle :
       {"EnTK Setup Overhead", "EnTK Management Overhead",
        "EnTK Tear-Down Overhead", "RTS Overhead", "RTS Tear-Down Overhead",
        "Data Staging Time", "Task Execution Time"}) {
    EXPECT_NE(table.find(needle), std::string::npos) << needle;
  }
  EXPECT_NE(table.find("16/0/0"), std::string::npos);
}

TEST(ResourceDefaults, HostModelMatchesPaperCalibration) {
  const HostModel host;
  // Defaults documented in resource.hpp: the paper's VM-host values.
  EXPECT_DOUBLE_EQ(host.setup_c, 0.1);
  EXPECT_DOUBLE_EQ(host.mgmt_c0, 9.5);
  EXPECT_DOUBLE_EQ(host.teardown_c, 5.0);
  const ResourceDescription res;
  EXPECT_EQ(res.resource, "local.localhost");
  EXPECT_GT(res.walltime_s, 0.0);
}

}  // namespace
}  // namespace entk
