// Unit tests for the SAGA adapter layer (simulated job service + stager).
#include <gtest/gtest.h>

#include "src/saga/job_service.hpp"
#include "src/saga/stager.hpp"

namespace entk::saga {
namespace {

ClockPtr fast_clock() { return std::make_shared<entk::ScaledClock>(1e-4); }

TEST(JobService, ImmediateActivationWithZeroQueueWait) {
  sim::ClusterSpec cluster = sim::cluster_by_name("local");
  JobService service(cluster, fast_clock());
  JobDescription jd;
  jd.name = "pilot";
  jd.nodes = 2;
  JobPtr job = service.submit(jd);
  job->wait_active();
  EXPECT_EQ(job->state(), JobState::Active);
  EXPECT_GE(job->start_time(), 0.0);
  EXPECT_EQ(service.submitted_count(), 1u);
}

TEST(JobService, QueueWaitDelaysActivation) {
  sim::ClusterSpec cluster = sim::cluster_by_name("local");
  cluster.batch_queue.base_wait_s = 50.0;  // virtual seconds
  auto clock = fast_clock();
  JobService service(cluster, clock);
  JobPtr job = service.submit({.name = "pilot", .nodes = 1});
  EXPECT_EQ(job->state(), JobState::Pending);
  job->wait_active();
  EXPECT_EQ(job->state(), JobState::Active);
  EXPECT_GE(clock->now(), 50.0);
}

TEST(JobService, OversizedRequestFails) {
  sim::ClusterSpec cluster = sim::cluster_by_name("local");  // 4 nodes
  JobService service(cluster, fast_clock());
  JobPtr job = service.submit({.name = "huge", .nodes = 100});
  EXPECT_EQ(job->state(), JobState::Failed);
  job->wait_active();  // returns immediately on failed jobs
  EXPECT_EQ(job->state(), JobState::Failed);
}

TEST(JobService, WalltimeExpiryReachesDone) {
  sim::ClusterSpec cluster = sim::cluster_by_name("local");
  auto clock = fast_clock();
  JobService service(cluster, clock);
  JobPtr job = service.submit({.name = "short", .nodes = 1, .walltime_s = 10});
  job->wait_active();
  EXPECT_EQ(job->state(), JobState::Active);
  clock->sleep_for(11.0);
  EXPECT_EQ(job->state(), JobState::Done);
}

TEST(JobService, CancelActiveJob) {
  sim::ClusterSpec cluster = sim::cluster_by_name("local");
  JobService service(cluster, fast_clock());
  JobPtr job = service.submit({.name = "c", .nodes = 1});
  job->wait_active();
  job->cancel();
  EXPECT_EQ(job->state(), JobState::Canceled);
}

TEST(JobService, JobIdsEncodeResourceAndCount) {
  sim::ClusterSpec cluster = sim::cluster_by_name("titan");
  cluster.batch_queue = {};  // no wait
  JobService service(cluster, fast_clock());
  JobPtr a = service.submit({.name = "a", .nodes = 1});
  JobPtr b = service.submit({.name = "b", .nodes = 1});
  EXPECT_NE(a->id(), b->id());
  EXPECT_NE(a->id().find("ornl.titan"), std::string::npos);
}

TEST(Stager, ActionsMapToFilesystemOps) {
  sim::FilesystemSpec spec;
  spec.latency_s = 0.01;
  spec.bandwidth_bps = 1e6;
  spec.link_latency_s = 0.002;
  sim::SharedFilesystem fs(spec);
  auto clock = fast_clock();
  DataStager stager(&fs, clock);

  const double link_d =
      stager.stage({"src", "dst", StagingAction::Link, 999999});
  EXPECT_DOUBLE_EQ(link_d, 0.002);  // size-independent

  const double copy_d =
      stager.stage({"src", "dst", StagingAction::Copy, 1000000});
  EXPECT_NEAR(copy_d, 0.01 + 1.0, 1e-9);

  const double xfer_d =
      stager.stage({"src", "dst", StagingAction::Transfer, 500000});
  EXPECT_NEAR(xfer_d, 0.01 + 0.5, 1e-9);

  const StagerStats s = stager.stats();
  EXPECT_EQ(s.directives, 3u);
  EXPECT_EQ(s.bytes, 999999u + 1000000u + 500000u);
  EXPECT_NEAR(s.total_virtual_s, link_d + copy_d + xfer_d, 1e-9);
}

TEST(Stager, StageAllIsSequentialSum) {
  sim::FilesystemSpec spec;
  spec.latency_s = 0.005;
  spec.bandwidth_bps = 1e9;
  spec.link_latency_s = 0.001;
  sim::SharedFilesystem fs(spec);
  auto clock = fast_clock();
  DataStager stager(&fs, clock);

  // The weak-scaling staging pattern: 3 links + 1 copy of 550 KB per task
  // (paper §IV-B-1).
  std::vector<StagingDirective> directives = {
      {"a", "t/", StagingAction::Link, 130},
      {"b", "t/", StagingAction::Link, 130},
      {"c", "t/", StagingAction::Link, 130},
      {"in", "t/", StagingAction::Copy, 550000},
  };
  const double total = stager.stage_all(directives);
  EXPECT_NEAR(total, 3 * 0.001 + 0.005 + 550000 / 1e9, 1e-9);
}

TEST(Stager, AdvancesVirtualClock) {
  sim::FilesystemSpec spec;
  spec.latency_s = 1.0;  // big, to be visible
  sim::SharedFilesystem fs(spec);
  auto clock = fast_clock();
  DataStager stager(&fs, clock);
  const double v0 = clock->now();
  stager.stage({"a", "b", StagingAction::Copy, 0});
  EXPECT_GE(clock->now() - v0, 0.9);
}

TEST(StagingAction, Names) {
  EXPECT_STREQ(to_string(StagingAction::Copy), "copy");
  EXPECT_STREQ(to_string(StagingAction::Link), "link");
  EXPECT_STREQ(to_string(StagingAction::Transfer), "transfer");
}

}  // namespace
}  // namespace entk::saga
