// Direct tests of the reusable worker runtime (src/worker): inline-unit
// execution without a registry, the at-least-once delivery ledger
// (ack-on-completion), bounded prefetch, and the registration/liveness
// directory — the pieces the entk_worker daemon is assembled from, tested
// against an in-process broker so no TCP or fork is involved.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "src/core/state_store.hpp"
#include "src/core/wfprocessor.hpp"
#include "src/rts/local_rts.hpp"
#include "src/worker/registration.hpp"
#include "src/worker/worker_runtime.hpp"

namespace entk {
namespace {

/// Fixture wiring a WorkerRuntime to an in-process broker the way the
/// daemon wires one to a RemoteBroker: no ObjectRegistry, units arrive
/// inline on the Pending queue, results leave on the Done queue.
class WorkerRuntimeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_shared<mq::Broker>("worker_test");
    broker_->declare_queue("q.pending");
    broker_->declare_queue("q.completed");
    broker_->declare_queue("q.states");
    profiler_ = std::make_shared<Profiler>();
    clock_ = std::make_shared<ScaledClock>(1e-4);
    // Empty registry: the synchronizer drains q.states and drops
    // transitions for tasks it does not know, exactly like the manager
    // side before it has seen a worker's states (and proving the runtime
    // itself never needs task objects).
    synchronizer_ = std::make_unique<Synchronizer>(
        broker_, "q.states", &registry_, &store_, profiler_);
    synchronizer_->start();
  }

  void TearDown() override {
    if (runtime_) runtime_->stop();
    synchronizer_->stop();
    broker_->close();
  }

  void start_runtime(worker::WorkerRuntimeConfig cfg = {}, int rts_workers = 2) {
    cfg.supervision.heartbeat_interval_s = 0.005;
    rts::RtsFactory factory = [this, rts_workers]() -> rts::RtsPtr {
      return std::make_shared<rts::LocalRts>(
          rts::LocalRtsConfig{.workers = rts_workers}, clock_, profiler_);
    };
    // The daemon's resolver: nothing to resolve, units must arrive inline.
    worker::UnitResolver resolver =
        [](const std::string&) -> std::optional<rts::TaskUnit> {
      return std::nullopt;
    };
    runtime_ = std::make_unique<worker::WorkerRuntime>(
        "worker_runtime", cfg, broker_, resolver, "q.pending", "q.completed",
        "q.states", factory, profiler_);
    runtime_->acquire_resources();
    runtime_->start();
  }

  static rts::TaskUnit make_unit(const std::string& uid, double duration_s) {
    rts::TaskUnit u;
    u.uid = uid;
    u.name = uid;
    u.executable = "sleep";
    u.duration_s = duration_s;
    return u;
  }

  /// Publish units the way the --workers WFProcessor does: one
  /// {"units": [...]} message per call.
  void publish_units(const std::vector<rts::TaskUnit>& units) {
    json::Value msg;
    json::Array arr;
    for (const rts::TaskUnit& u : units) arr.push_back(u.to_json());
    msg["units"] = std::move(arr);
    broker_->publish("q.pending",
                     mq::Message::json_body("q.pending", std::move(msg)));
  }

  /// Wait for n completion messages on the Done queue.
  std::vector<json::Value> collect(std::size_t n, double timeout_s = 5.0) {
    std::vector<json::Value> out;
    const double deadline = wall_now_s() + timeout_s;
    while (out.size() < n && wall_now_s() < deadline) {
      auto d = broker_->get("q.completed", 0.01);
      if (!d) continue;
      broker_->ack("q.completed", d->delivery_tag);
      out.push_back(d->message.body_json());
    }
    return out;
  }

  mq::QueueDepth depth(const std::string& queue) {
    for (const mq::QueueDepth& d : broker_->depth_snapshot()) {
      if (d.queue == queue) return d;
    }
    return {};
  }

  mq::BrokerPtr broker_;
  ObjectRegistry registry_;
  StateStore store_;
  ProfilerPtr profiler_;
  ClockPtr clock_;
  std::unique_ptr<Synchronizer> synchronizer_;
  std::unique_ptr<worker::WorkerRuntime> runtime_;
};

TEST_F(WorkerRuntimeFixture, ExecutesInlineUnitsWithoutRegistry) {
  start_runtime();
  publish_units({make_unit("task.w1", 0.5), make_unit("task.w2", 0.5),
                 make_unit("task.w3", 0.5)});
  const auto results = collect(3);
  ASSERT_EQ(results.size(), 3u);
  std::set<std::string> seen;
  for (const json::Value& r : results) {
    seen.insert(r.get_string("uid", ""));
    EXPECT_EQ(r.get_string("outcome", ""), "DONE");
  }
  EXPECT_EQ(seen.size(), 3u);
  // The counter increments after the Done publish; allow the callback to
  // finish its bookkeeping.
  for (int spin = 0; spin < 1000 && runtime_->tasks_done() < 3; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(runtime_->tasks_done(), 3u);
}

TEST_F(WorkerRuntimeFixture, AckOnCompletionHoldsDeliveryUntilUnitsFinish) {
  worker::WorkerRuntimeConfig cfg;
  cfg.ack_on_completion = true;
  start_runtime(cfg);
  // 20,000 virtual s = 2 s wall at 1e-4: long enough to observe the
  // delivery parked on the unacked ledger mid-execution.
  publish_units({make_unit("task.held", 20000.0)});
  for (int spin = 0; spin < 2000 && runtime_->in_flight() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(runtime_->in_flight(), 1u);
  // The claim is held open: not ready (fetched), not acked (running). A
  // worker killed here would leave the message requeueable.
  mq::QueueDepth d = depth("q.pending");
  EXPECT_EQ(d.ready, 0u);
  EXPECT_EQ(d.unacked, 1u);
  const auto results = collect(1);
  ASSERT_EQ(results.size(), 1u);
  // Completion releases the claim (ack follows the Done publish).
  for (int spin = 0; spin < 2000 && depth("q.pending").unacked != 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  d = depth("q.pending");
  EXPECT_EQ(d.ready, 0u);
  EXPECT_EQ(d.unacked, 0u);
  EXPECT_EQ(runtime_->in_flight(), 0u);
}

TEST_F(WorkerRuntimeFixture, BoundedPrefetchCapsUnitsHeldAtOnce) {
  worker::WorkerRuntimeConfig cfg;
  cfg.ack_on_completion = true;
  cfg.max_in_flight = 2;
  cfg.submit_batch = 64;
  // Plenty of RTS capacity: only the prefetch cap limits concurrency.
  start_runtime(cfg, /*rts_workers=*/8);
  std::vector<std::string> uids;
  for (int i = 0; i < 8; ++i) {
    const std::string uid = "task.cap" + std::to_string(i);
    uids.push_back(uid);
    // One message per unit, as the inline-units WFProcessor publishes.
    publish_units({make_unit(uid, 2000.0)});  // 0.2 s wall each
  }
  // While draining, the runtime never holds more than max_in_flight units;
  // the surplus stays ready on the shared queue for sibling workers.
  std::size_t max_seen = 0;
  std::set<std::string> seen;
  const double deadline = wall_now_s() + 10.0;
  while (seen.size() < uids.size() && wall_now_s() < deadline) {
    max_seen = std::max(max_seen, runtime_->in_flight());
    auto d = broker_->get("q.completed", 0.005);
    if (!d) continue;
    broker_->ack("q.completed", d->delivery_tag);
    seen.insert(d->message.body_json().get_string("uid", ""));
  }
  EXPECT_EQ(seen.size(), uids.size());
  EXPECT_LE(max_seen, 2u);
  EXPECT_GE(max_seen, 1u);
}

TEST_F(WorkerRuntimeFixture, RtsRestartResubmitsCachedInlineUnits) {
  // The daemon has no resolver; a restarted RTS must be refilled from the
  // in-flight unit cache instead.
  worker::WorkerRuntimeConfig cfg;
  cfg.ack_on_completion = true;
  cfg.supervision.rts_restart_limit = 1;
  start_runtime(cfg);
  publish_units({make_unit("task.restart", 20000.0)});
  for (int spin = 0; spin < 2000 && runtime_->in_flight() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(runtime_->in_flight(), 1u);
  runtime_->inject_rts_failure();
  for (int spin = 0; spin < 1000 && runtime_->rts_restarts() < 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(runtime_->rts_restarts(), 1);
  // The cached unit is back in flight on the fresh RTS instance.
  for (int spin = 0; spin < 1000 && runtime_->rts_stats().units_in_flight == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(runtime_->rts_stats().units_in_flight, 1u);
  // The pending delivery is still claimed by this runtime, not requeued.
  EXPECT_EQ(depth("q.pending").unacked, 1u);
}

// ------------------------------------------------- registration/liveness

TEST(WorkerDirectory, TracksRegisterHeartbeatTtlAndDeregister) {
  auto broker = std::make_shared<mq::Broker>("dir_test");
  auto profiler = std::make_shared<Profiler>();
  worker::WorkerDirectory directory(broker, /*ttl_s=*/0.15, profiler);
  directory.start();
  worker::WorkerAnnouncer announcer(broker, "w_test", 4);

  announcer.announce_register();
  for (int spin = 0; spin < 1000 && directory.registered_workers() == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(directory.registered_workers(), 1u);
  EXPECT_EQ(directory.live_workers(), 1u);
  {
    const auto workers = directory.workers();
    ASSERT_EQ(workers.size(), 1u);
    EXPECT_EQ(workers[0].worker_id, "w_test");
    EXPECT_EQ(workers[0].cores, 4);
    EXPECT_FALSE(workers[0].deregistered);
  }

  // Silence past the TTL: still registered, no longer live.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(directory.registered_workers(), 1u);
  EXPECT_EQ(directory.live_workers(), 0u);

  // A heartbeat revives it and carries the progress counters.
  announcer.heartbeat(/*tasks_done=*/7, /*in_flight=*/2);
  for (int spin = 0; spin < 1000 && directory.live_workers() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(directory.live_workers(), 1u);
  {
    const auto workers = directory.workers();
    ASSERT_EQ(workers.size(), 1u);
    EXPECT_EQ(workers[0].tasks_done, 7u);
    EXPECT_EQ(workers[0].in_flight, 2u);
  }

  // Deregister: drops out of the live count immediately, keeps history.
  announcer.announce_deregister(/*tasks_done=*/9);
  for (int spin = 0; spin < 1000 && directory.live_workers() != 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(directory.live_workers(), 0u);
  EXPECT_EQ(directory.registered_workers(), 1u);
  {
    const auto workers = directory.workers();
    ASSERT_EQ(workers.size(), 1u);
    EXPECT_TRUE(workers[0].deregistered);
    EXPECT_EQ(workers[0].tasks_done, 9u);
  }
  directory.stop();
  broker->close();
}

// ----------------------------------------- at-least-once deduplication

/// At-least-once delivery means a kill/requeue race can execute one task
/// twice; the WFProcessor must resolve it exactly once. Drive its Dequeue
/// side directly with a duplicated completion.
TEST(WorkerDedup, DuplicateResultResolvesTaskExactlyOnce) {
  auto broker = std::make_shared<mq::Broker>("dedup_test");
  broker->declare_queue("q.pending");
  broker->declare_queue("q.completed");
  broker->declare_queue("q.states");
  auto profiler = std::make_shared<Profiler>();
  ObjectRegistry registry;
  StateStore store;
  Synchronizer synchronizer(broker, "q.states", &registry, &store, profiler);
  synchronizer.start();

  auto pipeline = std::make_shared<Pipeline>("p");
  auto stage = std::make_shared<Stage>("s");
  auto task = std::make_shared<Task>("t");
  task->duration_s = 1.0;
  stage->add_task(task);
  pipeline->add_stage(stage);
  registry.add_pipeline(pipeline);

  WfConfig cfg;
  cfg.inline_units = true;
  WFProcessor wfp(cfg, broker, &registry, "q.pending", "q.completed",
                  "q.states", profiler);
  wfp.start();

  // The worker side: consume the pending unit, advance the states the way
  // a WorkerRuntime does, then deliver the SAME completion twice (as after
  // a kill → requeue → both workers report).
  auto d = broker->get("q.pending", 2.0);
  ASSERT_TRUE(d.has_value());
  broker->ack("q.pending", d->delivery_tag);
  const json::Value body = d->message.body_json();
  ASSERT_TRUE(body.contains("units"));  // inline mode ships full units
  const json::Array& units = body.at("units").as_array();
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0].get_string("uid", ""), task->uid());

  SyncClient sync(broker, "fake_worker", "q.states", "q.ack.fake");
  sync.sync(task->uid(), "task", "SCHEDULED", "SUBMITTING", true);
  sync.sync(task->uid(), "task", "SUBMITTING", "SUBMITTED", true);
  json::Value result;
  result["uid"] = task->uid();
  result["outcome"] = "DONE";
  result["exit_code"] = 0;
  broker->publish("q.completed", mq::Message::json_body("q.completed", result));
  // Second copy claims FAILED with a nonzero exit code: if dedup ever
  // regressed, the task state or exit code would change observably.
  result["outcome"] = "FAILED";
  result["exit_code"] = 13;
  broker->publish("q.completed", mq::Message::json_body("q.completed", result));

  for (int spin = 0; spin < 3000 && task->state() != TaskState::Done; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(task->state(), TaskState::Done);
  // Give the duplicate time to flow through Dequeue, then re-check: the
  // first resolution stands.
  for (int spin = 0; spin < 2000; ++spin) {
    bool drained = true;
    for (const mq::QueueDepth& qd : broker->depth_snapshot()) {
      if (qd.queue == "q.completed" && (qd.ready != 0 || qd.unacked != 0)) {
        drained = false;
      }
    }
    if (drained) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(task->state(), TaskState::Done);
  EXPECT_EQ(task->exit_code(), 0);
  EXPECT_EQ(stage->state(), StageState::Done);

  wfp.stop();
  synchronizer.stop();
  broker->close();
}

}  // namespace
}  // namespace entk
