// Property-style sweeps over the PST execution semantics (paper §II-B-1):
// for any application shape (P pipelines x S stages x T tasks), the
// toolkit must execute every task exactly once, finish every object in
// the right final state, serialize stages within a pipeline, and run
// pipelines/tasks concurrently. Also covers heterogeneous (GPU) tasks —
// the "dynamic mapping of tasks onto heterogeneous resources" direction
// of the paper's conclusion.
#include <gtest/gtest.h>

#include <atomic>
#include <tuple>

#include "src/core/app_manager.hpp"

namespace entk {
namespace {

AppManagerConfig fast_config(int cores = 32) {
  AppManagerConfig cfg;
  cfg.resource.resource = "local.localhost";
  cfg.resource.cpus = cores;
  cfg.resource.agent.env_setup_s = 0.1;
  cfg.resource.agent.dispatch_rate_per_s = 1000;
  cfg.resource.rts_teardown_base_s = 0.01;
  cfg.resource.rts_teardown_per_unit_s = 0.0;
  cfg.clock_scale = 1e-4;
  return cfg;
}

// ---------------------------------------------------------------- shape --

class PstShape
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PstShape, EveryTaskRunsExactlyOnceAndStatesFinalize) {
  const auto [pipelines, stages, tasks] = GetParam();
  auto executions = std::make_shared<std::atomic<int>>(0);

  AppManager amgr(fast_config());
  std::vector<PipelinePtr> app;
  for (int p = 0; p < pipelines; ++p) {
    auto pipeline = std::make_shared<Pipeline>("p" + std::to_string(p));
    for (int s = 0; s < stages; ++s) {
      auto stage = std::make_shared<Stage>("s" + std::to_string(s));
      for (int t = 0; t < tasks; ++t) {
        auto task = std::make_shared<Task>("t");
        task->duration_s = 0.5;
        task->function = [executions] {
          ++*executions;
          return 0;
        };
        stage->add_task(task);
      }
      pipeline->add_stage(stage);
    }
    app.push_back(std::move(pipeline));
  }
  amgr.add_pipelines(std::move(app));
  amgr.run();

  const int total = pipelines * stages * tasks;
  EXPECT_EQ(executions->load(), total);
  EXPECT_EQ(amgr.tasks_done(), static_cast<std::size_t>(total));
  EXPECT_EQ(amgr.tasks_failed(), 0u);
  for (const PipelinePtr& p : amgr.pipelines()) {
    EXPECT_EQ(p->state(), PipelineState::Done);
    for (const StagePtr& s : p->stages()) {
      EXPECT_EQ(s->state(), StageState::Done);
      for (const TaskPtr& t : s->tasks()) {
        EXPECT_EQ(t->state(), TaskState::Done);
        EXPECT_EQ(t->exit_code(), 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PstShape,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 1, 8),
                      std::make_tuple(1, 8, 1), std::make_tuple(8, 1, 1),
                      std::make_tuple(2, 3, 4), std::make_tuple(4, 2, 2),
                      std::make_tuple(3, 1, 5), std::make_tuple(1, 5, 3),
                      std::make_tuple(5, 5, 1), std::make_tuple(2, 2, 8)));

// ---------------------------------------------------------- sequencing --

class StageSequencing : public ::testing::TestWithParam<int> {};

TEST_P(StageSequencing, StagesNeverOverlapWithinAPipeline) {
  const int stages = GetParam();
  // Record a global order of (stage_index, event) pairs.
  auto order = std::make_shared<std::vector<int>>();
  auto mutex = std::make_shared<std::mutex>();

  AppManager amgr(fast_config());
  auto pipeline = std::make_shared<Pipeline>("seq");
  for (int s = 0; s < stages; ++s) {
    auto stage = std::make_shared<Stage>("s" + std::to_string(s));
    for (int t = 0; t < 3; ++t) {
      auto task = std::make_shared<Task>("t");
      task->duration_s = 0.3;
      task->function = [order, mutex, s] {
        std::lock_guard<std::mutex> lock(*mutex);
        order->push_back(s);
        return 0;
      };
      stage->add_task(task);
    }
    pipeline->add_stage(stage);
  }
  amgr.add_pipelines({pipeline});
  amgr.run();

  // The recorded stage indices must be non-decreasing: no task of stage
  // i+1 may run before every task of stage i completed.
  ASSERT_EQ(order->size(), static_cast<std::size_t>(stages * 3));
  for (std::size_t i = 1; i < order->size(); ++i) {
    EXPECT_LE((*order)[i - 1], (*order)[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, StageSequencing, ::testing::Values(2, 4, 7));

// -------------------------------------------------------- retry sweeps --

class RetryBudget : public ::testing::TestWithParam<int> {};

TEST_P(RetryBudget, TaskFailingNTimesNeedsBudgetN) {
  const int failures_before_success = GetParam();
  auto attempts = std::make_shared<std::atomic<int>>(0);

  // Budget exactly equal to the number of failures: must succeed.
  AppManagerConfig cfg = fast_config();
  cfg.task_retry_limit = failures_before_success;
  AppManager amgr(cfg);
  auto pipeline = std::make_shared<Pipeline>("p");
  auto stage = std::make_shared<Stage>("s");
  auto task = std::make_shared<Task>("flaky");
  task->duration_s = 0.2;
  task->function = [attempts, failures_before_success] {
    return ++*attempts <= failures_before_success ? 1 : 0;
  };
  stage->add_task(task);
  pipeline->add_stage(stage);
  amgr.add_pipelines({pipeline});
  amgr.run();
  EXPECT_EQ(attempts->load(), failures_before_success + 1);
  EXPECT_EQ(amgr.tasks_done(), 1u);
  EXPECT_EQ(amgr.resubmissions(),
            static_cast<std::size_t>(failures_before_success));
  EXPECT_EQ(pipeline->state(), PipelineState::Done);
}

INSTANTIATE_TEST_SUITE_P(Budgets, RetryBudget, ::testing::Values(0, 1, 3, 6));

// ------------------------------------------------------- heterogeneous --

TEST(Heterogeneous, GpuTasksScheduleOntoGpuNodes) {
  // Titan nodes carry 1 GPU each; a GPU task must occupy one.
  AppManagerConfig cfg;
  cfg.resource.resource = "ornl.titan";
  cfg.resource.nodes = 4;  // 64 cores, 4 GPUs
  cfg.clock_scale = 1e-4;
  cfg.resource.agent.env_setup_s = 0.1;
  cfg.resource.agent.dispatch_rate_per_s = 1000;
  cfg.resource.rts_teardown_base_s = 0.01;
  AppManager amgr(cfg);

  auto pipeline = std::make_shared<Pipeline>("gpu");
  auto stage = std::make_shared<Stage>("s");
  for (int i = 0; i < 8; ++i) {
    auto task = std::make_shared<Task>("gpu-task");
    task->duration_s = 5.0;
    task->gpu_reqs.processes = 1;
    stage->add_task(task);
  }
  pipeline->add_stage(stage);
  amgr.add_pipelines({pipeline});
  amgr.run();
  EXPECT_EQ(amgr.tasks_done(), 8u);
  // 8 GPU tasks on 4 GPUs: at least two generations.
  EXPECT_GE(amgr.overheads().task_exec_s, 2 * 5.0);
}

TEST(Heterogeneous, MixedCpuGpuWorkloadsShareThePilot) {
  AppManagerConfig cfg;
  cfg.resource.resource = "ornl.titan";
  cfg.resource.nodes = 2;  // 32 cores, 2 GPUs
  cfg.clock_scale = 1e-4;
  cfg.resource.agent.env_setup_s = 0.1;
  cfg.resource.agent.dispatch_rate_per_s = 1000;
  cfg.resource.rts_teardown_base_s = 0.01;
  AppManager amgr(cfg);

  auto pipeline = std::make_shared<Pipeline>("mixed");
  auto stage = std::make_shared<Stage>("s");
  for (int i = 0; i < 4; ++i) {
    auto cpu_task = std::make_shared<Task>("cpu");
    cpu_task->duration_s = 3.0;
    cpu_task->cpu_reqs.processes = 8;
    stage->add_task(cpu_task);
    auto gpu_task = std::make_shared<Task>("gpu");
    gpu_task->duration_s = 3.0;
    gpu_task->gpu_reqs.processes = 1;
    stage->add_task(gpu_task);
  }
  pipeline->add_stage(stage);
  amgr.add_pipelines({pipeline});
  amgr.run();
  EXPECT_EQ(amgr.tasks_done(), 8u);
  EXPECT_EQ(pipeline->state(), PipelineState::Done);
}

TEST(Heterogeneous, GpuRequestOnGpulessCiFails) {
  AppManagerConfig cfg = fast_config();  // local CI has no GPUs
  AppManager amgr(cfg);
  auto pipeline = std::make_shared<Pipeline>("nogpu");
  auto stage = std::make_shared<Stage>("s");
  auto task = std::make_shared<Task>("gpu");
  task->duration_s = 1.0;
  task->gpu_reqs.processes = 1;
  stage->add_task(task);
  pipeline->add_stage(stage);
  amgr.add_pipelines({pipeline});
  amgr.run();
  EXPECT_EQ(amgr.tasks_failed(), 1u);
  EXPECT_EQ(pipeline->state(), PipelineState::Failed);
}

// ------------------------------------------------- concurrency evidence --

TEST(Concurrency, PipelinesOverlapInVirtualTime) {
  // Two pipelines of one long task each: with concurrent execution the
  // total exec span is ~one task, not two.
  AppManager amgr(fast_config());
  std::vector<PipelinePtr> app;
  for (int p = 0; p < 2; ++p) {
    auto pipeline = std::make_shared<Pipeline>("p");
    auto stage = std::make_shared<Stage>("s");
    auto task = std::make_shared<Task>("t");
    task->duration_s = 20.0;
    stage->add_task(task);
    pipeline->add_stage(stage);
    app.push_back(std::move(pipeline));
  }
  amgr.add_pipelines(std::move(app));
  amgr.run();
  EXPECT_LT(amgr.overheads().task_exec_s, 2 * 20.0);
  EXPECT_GE(amgr.overheads().task_exec_s, 20.0);
}

}  // namespace
}  // namespace entk
