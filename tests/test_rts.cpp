// Unit/integration tests for the runtime system: unit serialization,
// agent execution semantics, pilot lifecycle, PilotRts and LocalRts.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "src/rts/local_rts.hpp"
#include "src/rts/pilot_rts.hpp"

namespace entk::rts {
namespace {

ClockPtr fast_clock() { return std::make_shared<ScaledClock>(1e-4); }

/// Collects completion callbacks and lets tests wait for N of them.
class ResultSink {
 public:
  void operator()(const UnitResult& r) {
    std::lock_guard<std::mutex> lock(mutex_);
    results_.push_back(r);
    cv_.notify_all();
  }

  std::function<void(const UnitResult&)> callback() {
    return [this](const UnitResult& r) { (*this)(r); };
  }

  bool wait_for(std::size_t n, double timeout_s = 10.0) {
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                        [&] { return results_.size() >= n; });
  }

  std::vector<UnitResult> results() {
    std::lock_guard<std::mutex> lock(mutex_);
    return results_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<UnitResult> results_;
};

TaskUnit simple_unit(const std::string& uid, double duration) {
  TaskUnit u;
  u.uid = uid;
  u.name = uid;
  u.executable = "sleep";
  u.duration_s = duration;
  return u;
}

PilotRtsConfig fast_pilot_config(int cores = 16) {
  PilotRtsConfig cfg;
  cfg.pilot.resource = "local.localhost";
  cfg.pilot.cores = cores;
  cfg.agent.env_setup_s = 0.05;
  cfg.agent.dispatch_rate_per_s = 1000;
  cfg.teardown_base_s = 0.01;
  cfg.teardown_per_unit_s = 0.0;
  return cfg;
}

TEST(UnitSerialization, RoundTrip) {
  TaskUnit u = simple_unit("task.0001", 12.5);
  u.cores = 4;
  u.gpus = 1;
  u.exclusive_nodes = true;
  u.input_staging.push_back({"in", "sandbox/", saga::StagingAction::Copy, 1024});
  u.output_staging.push_back({"out", "home/", saga::StagingAction::Transfer, 2048});
  u.metadata["key"] = "value";

  TaskUnit round = TaskUnit::from_json(u.to_json());
  EXPECT_EQ(round.uid, u.uid);
  EXPECT_EQ(round.cores, 4);
  EXPECT_EQ(round.gpus, 1);
  EXPECT_TRUE(round.exclusive_nodes);
  EXPECT_DOUBLE_EQ(round.duration_s, 12.5);
  ASSERT_EQ(round.input_staging.size(), 1u);
  EXPECT_EQ(round.input_staging[0].bytes, 1024u);
  ASSERT_EQ(round.output_staging.size(), 1u);
  EXPECT_EQ(round.output_staging[0].action, saga::StagingAction::Transfer);
  EXPECT_EQ(round.metadata.at("key").as_string(), "value");
}

TEST(UnitSerialization, ResultRoundTrip) {
  UnitResult r;
  r.uid = "task.0002";
  r.outcome = UnitOutcome::Failed;
  r.exit_code = 42;
  r.exec_start_t = 1.5;
  r.exec_end_t = 2.5;
  r.staging_in_s = 0.25;
  UnitResult round = UnitResult::from_json(r.to_json());
  EXPECT_EQ(round.uid, r.uid);
  EXPECT_EQ(round.outcome, UnitOutcome::Failed);
  EXPECT_EQ(round.exit_code, 42);
  EXPECT_DOUBLE_EQ(round.exec_start_t, 1.5);
  EXPECT_DOUBLE_EQ(round.staging_in_s, 0.25);
}

TEST(PilotRtsTest, ExecutesUnitsAndReportsTimes) {
  PilotRts rts(fast_pilot_config(), fast_clock(),
               std::make_shared<Profiler>());
  ResultSink sink;
  rts.set_completion_callback(sink.callback());
  rts.initialize();
  EXPECT_TRUE(rts.is_healthy());

  rts.submit({simple_unit("u.0", 5.0), simple_unit("u.1", 5.0)});
  ASSERT_TRUE(sink.wait_for(2));
  for (const UnitResult& r : sink.results()) {
    EXPECT_EQ(r.outcome, UnitOutcome::Done);
    EXPECT_GE(r.exec_end_t - r.exec_start_t, 5.0);
    EXPECT_LE(r.exec_start_t, r.exec_end_t);
    EXPECT_LE(r.submit_t, r.exec_start_t);
  }
  const RtsStats s = rts.stats();
  EXPECT_EQ(s.units_submitted, 2u);
  EXPECT_EQ(s.units_completed, 2u);
  EXPECT_EQ(s.units_in_flight, 0u);
  rts.terminate();
  EXPECT_FALSE(rts.is_healthy());
}

TEST(PilotRtsTest, CoreContentionSerializesGenerations) {
  auto clock = fast_clock();
  PilotRts rts(fast_pilot_config(8), clock, std::make_shared<Profiler>());
  ResultSink sink;
  rts.set_completion_callback(sink.callback());
  rts.initialize();
  // 16 single-core 10 s units on 8 cores: two generations.
  std::vector<TaskUnit> units;
  for (int i = 0; i < 16; ++i) {
    units.push_back(simple_unit("g." + std::to_string(i), 10.0));
  }
  rts.submit(std::move(units));
  ASSERT_TRUE(sink.wait_for(16));
  double first_start = 1e18, last_end = 0;
  for (const UnitResult& r : sink.results()) {
    first_start = std::min(first_start, r.exec_start_t);
    last_end = std::max(last_end, r.exec_end_t);
  }
  EXPECT_GE(last_end - first_start, 20.0);  // at least 2 generations
  EXPECT_LE(last_end - first_start, 40.0);  // but not serialized 16x
  rts.terminate();
}

TEST(PilotRtsTest, CallableUnitsRun) {
  PilotRts rts(fast_pilot_config(), fast_clock(),
               std::make_shared<Profiler>());
  ResultSink sink;
  rts.set_completion_callback(sink.callback());
  rts.initialize();
  std::atomic<int> ran{0};
  TaskUnit u = simple_unit("c.0", 0.5);
  u.callable = [&ran] {
    ++ran;
    return 0;
  };
  TaskUnit bad = simple_unit("c.1", 0.5);
  bad.callable = [] { return 9; };
  rts.submit({std::move(u), std::move(bad)});
  ASSERT_TRUE(sink.wait_for(2));
  EXPECT_EQ(ran.load(), 1);
  int done = 0, failed = 0;
  for (const UnitResult& r : sink.results()) {
    if (r.outcome == UnitOutcome::Done) ++done;
    if (r.outcome == UnitOutcome::Failed) {
      ++failed;
      EXPECT_EQ(r.exit_code, 9);
    }
  }
  EXPECT_EQ(done, 1);
  EXPECT_EQ(failed, 1);
  rts.terminate();
}

TEST(PilotRtsTest, ThrowingCallableFailsUnit) {
  PilotRts rts(fast_pilot_config(), fast_clock(),
               std::make_shared<Profiler>());
  ResultSink sink;
  rts.set_completion_callback(sink.callback());
  rts.initialize();
  TaskUnit u = simple_unit("t.0", 0.1);
  u.callable = []() -> int { throw std::runtime_error("boom"); };
  rts.submit({std::move(u)});
  ASSERT_TRUE(sink.wait_for(1));
  EXPECT_EQ(sink.results()[0].outcome, UnitOutcome::Failed);
  EXPECT_EQ(sink.results()[0].exit_code, 255);
  rts.terminate();
}

TEST(PilotRtsTest, InfeasibleUnitFailsImmediately) {
  PilotRts rts(fast_pilot_config(8), fast_clock(),
               std::make_shared<Profiler>());
  ResultSink sink;
  rts.set_completion_callback(sink.callback());
  rts.initialize();
  TaskUnit huge = simple_unit("huge", 1.0);
  huge.cores = 10000;  // larger than the pilot
  rts.submit({std::move(huge)});
  ASSERT_TRUE(sink.wait_for(1));
  EXPECT_EQ(sink.results()[0].outcome, UnitOutcome::Failed);
  rts.terminate();
}

TEST(PilotRtsTest, StagingChargedAndReported) {
  PilotRts rts(fast_pilot_config(), fast_clock(),
               std::make_shared<Profiler>());
  ResultSink sink;
  rts.set_completion_callback(sink.callback());
  rts.initialize();
  TaskUnit u = simple_unit("s.0", 1.0);
  u.input_staging.push_back({"in", "t/", saga::StagingAction::Copy, 5000000});
  u.output_staging.push_back({"o", "h/", saga::StagingAction::Copy, 5000000});
  rts.submit({std::move(u)});
  ASSERT_TRUE(sink.wait_for(1));
  const UnitResult r = sink.results()[0];
  EXPECT_GT(r.staging_in_s, 0.0);
  EXPECT_GT(r.staging_out_s, 0.0);
  rts.terminate();
}

TEST(PilotRtsTest, FailureModelInjectsFailures) {
  PilotRtsConfig cfg = fast_pilot_config(64);
  cfg.pilot.resource = "xsede.comet";  // local.localhost has only 32 cores
  cfg.failure.concurrency_threshold = 32;
  cfg.failure.overload_probability = 1.0;
  PilotRts rts(cfg, fast_clock(), std::make_shared<Profiler>());
  ResultSink sink;
  rts.set_completion_callback(sink.callback());
  rts.initialize();
  std::vector<TaskUnit> units;
  // Long enough (2,000 virtual s = 0.2 s wall) that the whole batch is
  // still executing when the last unit's overload check fires, even if
  // intake is briefly preempted on a loaded machine.
  for (int i = 0; i < 40; ++i) {
    units.push_back(simple_unit("f." + std::to_string(i), 2000.0));
  }
  rts.submit(std::move(units));
  ASSERT_TRUE(sink.wait_for(40));
  int failed = 0;
  for (const UnitResult& r : sink.results()) {
    if (r.outcome == UnitOutcome::Failed) ++failed;
  }
  // Units 32..40 started while >= 32 units were executing.
  EXPECT_GE(failed, 8);
  rts.terminate();
}

TEST(PilotRtsTest, KillLosesInFlightUnits) {
  auto clock = fast_clock();
  PilotRts rts(fast_pilot_config(), clock, std::make_shared<Profiler>());
  ResultSink sink;
  rts.set_completion_callback(sink.callback());
  rts.initialize();
  rts.submit({simple_unit("k.0", 1000.0), simple_unit("k.1", 1000.0)});
  // Let them enter execution, then kill the RTS.
  clock->sleep_for(5.0);
  rts.kill();
  EXPECT_FALSE(rts.is_healthy());
  const std::vector<std::string> lost = rts.in_flight_units();
  EXPECT_EQ(lost.size(), 2u);
  EXPECT_THROW(rts.submit({simple_unit("k.2", 1.0)}), RtsError);
}

TEST(PilotRtsTest, OversizedPilotThrowsOnInitialize) {
  PilotRtsConfig cfg = fast_pilot_config();
  cfg.pilot.resource = "local.localhost";
  cfg.pilot.nodes = 100000;
  PilotRts rts(cfg, fast_clock(), std::make_shared<Profiler>());
  EXPECT_THROW(rts.initialize(), RtsError);
}

TEST(LocalRtsTest, ExecutesAndReports) {
  LocalRts rts(LocalRtsConfig{.workers = 2}, fast_clock(),
               std::make_shared<Profiler>());
  ResultSink sink;
  rts.set_completion_callback(sink.callback());
  rts.initialize();
  std::atomic<int> ran{0};
  TaskUnit u = simple_unit("l.0", 0.5);
  u.callable = [&ran] {
    ++ran;
    return 0;
  };
  rts.submit({std::move(u)});
  ASSERT_TRUE(sink.wait_for(1));
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(sink.results()[0].outcome, UnitOutcome::Done);
  rts.terminate();
  EXPECT_FALSE(rts.is_healthy());
}

TEST(LocalRtsTest, InjectedFailureProbability) {
  LocalRts rts(LocalRtsConfig{.workers = 2, .failure_probability = 1.0},
               fast_clock(), std::make_shared<Profiler>());
  ResultSink sink;
  rts.set_completion_callback(sink.callback());
  rts.initialize();
  rts.submit({simple_unit("f.0", 0.1)});
  ASSERT_TRUE(sink.wait_for(1));
  EXPECT_EQ(sink.results()[0].outcome, UnitOutcome::Failed);
  rts.kill();
}

TEST(PilotLifecycle, StatesProgress) {
  auto clock = fast_clock();
  auto profiler = std::make_shared<Profiler>();
  PilotManager pmgr(clock, profiler);
  PilotDescription pd;
  pd.resource = "local.localhost";
  pd.cores = 8;
  PilotPtr pilot = pmgr.submit(pd);
  pilot->wait_bootstrapped();
  EXPECT_EQ(pilot->state(), PilotState::Active);
  EXPECT_EQ(pilot->cores(), 8);
  EXPECT_GT(pilot->nodes(), 0);
  pilot->cancel();
  EXPECT_EQ(pilot->state(), PilotState::Canceled);
}

TEST(PilotLifecycle, CoresRoundUpToWholeNodes) {
  auto clock = fast_clock();
  PilotManager pmgr(clock, std::make_shared<Profiler>());
  PilotDescription pd;
  pd.resource = "local.localhost";  // 8 cores/node
  pd.cores = 9;
  PilotPtr pilot = pmgr.submit(pd);
  EXPECT_EQ(pilot->nodes(), 2);
  EXPECT_EQ(pilot->cores(), 16);
}

TEST(UnitOutcomeNames, Strings) {
  EXPECT_STREQ(to_string(UnitOutcome::Done), "DONE");
  EXPECT_STREQ(to_string(UnitOutcome::Failed), "FAILED");
  EXPECT_STREQ(to_string(UnitOutcome::Canceled), "CANCELED");
  EXPECT_STREQ(to_string(UnitOutcome::Lost), "LOST");
}

}  // namespace
}  // namespace entk::rts
