// Fault-tolerance integration tests (paper §II-B-4): RTS failure and
// restart with resubmission of lost units, restart-budget exhaustion,
// task retry limits, and recovery journals.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <mutex>
#include <thread>

#include "src/core/app_manager.hpp"
#include "src/rts/local_rts.hpp"

namespace entk {
namespace {

AppManagerConfig fast_config() {
  AppManagerConfig cfg;
  cfg.resource.resource = "local.localhost";
  cfg.resource.cpus = 16;
  cfg.resource.agent.env_setup_s = 0.1;
  cfg.resource.agent.dispatch_rate_per_s = 1000;
  cfg.resource.rts_teardown_base_s = 0.01;
  cfg.resource.rts_teardown_per_unit_s = 0.0;
  cfg.clock_scale = 1e-4;
  cfg.supervision.heartbeat_interval_s = 0.005;
  return cfg;
}

PipelinePtr long_pipeline(int tasks, double duration_s) {
  auto p = std::make_shared<Pipeline>("p");
  auto s = std::make_shared<Stage>("s");
  for (int i = 0; i < tasks; ++i) {
    auto t = std::make_shared<Task>("t" + std::to_string(i));
    t->executable = "sleep";
    t->duration_s = duration_s;
    s->add_task(t);
  }
  p->add_stage(s);
  return p;
}

TEST(FaultTolerance, RtsFailureIsRecoveredAndTasksComplete) {
  AppManagerConfig cfg = fast_config();
  cfg.supervision.rts_restart_limit = 2;
  AppManager amgr(cfg);
  // Tasks long enough (in wall time) that the kill lands mid-execution:
  // 2000 virtual s at 1e-4 scale = 200 ms.
  amgr.add_pipelines({long_pipeline(4, 2000.0)});

  std::thread killer([&amgr] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    amgr.inject_rts_failure();
  });
  amgr.run();
  killer.join();

  EXPECT_EQ(amgr.tasks_done(), 4u);
  EXPECT_EQ(amgr.tasks_failed(), 0u);
  EXPECT_EQ(amgr.rts_restarts(), 1);
  EXPECT_EQ(amgr.pipelines()[0]->state(), PipelineState::Done);
}

TEST(FaultTolerance, RestartBudgetExhaustionAbortsWorkflow) {
  AppManagerConfig cfg = fast_config();
  cfg.supervision.rts_restart_limit = 0;  // no restarts allowed
  AppManager amgr(cfg);
  amgr.add_pipelines({long_pipeline(2, 5000.0)});
  std::thread killer([&amgr] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    amgr.inject_rts_failure();
  });
  amgr.run();  // must return (aborted), not hang
  killer.join();
  EXPECT_EQ(amgr.pipelines()[0]->state(), PipelineState::Failed);
  EXPECT_EQ(amgr.tasks_done(), 0u);
}

TEST(FaultTolerance, DoubleFailureWithinBudgetStillCompletes) {
  AppManagerConfig cfg = fast_config();
  cfg.supervision.rts_restart_limit = 3;
  AppManager amgr(cfg);
  amgr.add_pipelines({long_pipeline(2, 1500.0)});
  std::thread killer([&amgr] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    amgr.inject_rts_failure();
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    amgr.inject_rts_failure();
  });
  amgr.run();
  killer.join();
  EXPECT_EQ(amgr.tasks_done(), 2u);
  EXPECT_GE(amgr.rts_restarts(), 1);
  EXPECT_LE(amgr.rts_restarts(), 3);
}

TEST(FaultTolerance, PerTaskRetryLimitOverridesDefault) {
  AppManagerConfig cfg = fast_config();
  cfg.task_retry_limit = 0;
  AppManager amgr(cfg);
  auto p = std::make_shared<Pipeline>("p");
  auto s = std::make_shared<Stage>("s");
  auto stubborn = std::make_shared<Task>("stubborn");
  auto tries = std::make_shared<std::atomic<int>>(0);
  stubborn->retry_limit = 4;  // per-task override
  stubborn->duration_s = 0.5;
  stubborn->function = [tries] { return ++*tries < 4 ? 1 : 0; };
  s->add_task(stubborn);
  p->add_stage(s);
  amgr.add_pipelines({p});
  amgr.run();
  EXPECT_EQ(tries->load(), 4);
  EXPECT_EQ(amgr.tasks_done(), 1u);
  EXPECT_EQ(amgr.resubmissions(), 3u);
}

TEST(FaultTolerance, RetryExhaustionFailsStage) {
  AppManagerConfig cfg = fast_config();
  cfg.task_retry_limit = 2;
  AppManager amgr(cfg);
  auto p = std::make_shared<Pipeline>("p");
  auto s = std::make_shared<Stage>("s");
  auto hopeless = std::make_shared<Task>("hopeless");
  auto tries = std::make_shared<std::atomic<int>>(0);
  hopeless->duration_s = 0.2;
  hopeless->function = [tries] {
    ++*tries;
    return 1;
  };
  s->add_task(hopeless);
  // A healthy sibling task must still complete before the stage resolves.
  auto ok = std::make_shared<Task>("ok");
  ok->duration_s = 0.2;
  ok->function = [] { return 0; };
  s->add_task(ok);
  p->add_stage(s);
  amgr.add_pipelines({p});
  amgr.run();
  EXPECT_EQ(tries->load(), 3);  // initial + 2 retries
  EXPECT_EQ(amgr.tasks_failed(), 1u);
  EXPECT_EQ(amgr.tasks_done(), 1u);
  EXPECT_EQ(p->state(), PipelineState::Failed);
  EXPECT_EQ(amgr.overheads().resubmissions, 2u);
}

TEST(FaultTolerance, LaterStagesSkippedAfterStageFailure) {
  AppManagerConfig cfg = fast_config();
  AppManager amgr(cfg);
  auto p = std::make_shared<Pipeline>("p");
  auto s1 = std::make_shared<Stage>("s1");
  auto bad = std::make_shared<Task>("bad");
  bad->duration_s = 0.2;
  bad->function = [] { return 1; };
  s1->add_task(bad);
  p->add_stage(s1);
  auto s2 = std::make_shared<Stage>("s2");
  auto never = std::make_shared<std::atomic<bool>>(false);
  auto t2 = std::make_shared<Task>("never");
  t2->duration_s = 0.2;
  t2->function = [never] {
    *never = true;
    return 0;
  };
  s2->add_task(t2);
  p->add_stage(s2);
  amgr.add_pipelines({p});
  amgr.run();
  EXPECT_FALSE(never->load());
  EXPECT_EQ(s2->state(), StageState::Described);  // never scheduled
  EXPECT_EQ(p->state(), PipelineState::Failed);
}

TEST(FaultTolerance, OtherPipelinesContinueWhenOneFails) {
  AppManagerConfig cfg = fast_config();
  AppManager amgr(cfg);
  auto bad_pipeline = std::make_shared<Pipeline>("bad");
  auto bs = std::make_shared<Stage>("bs");
  auto bad = std::make_shared<Task>("bad");
  bad->duration_s = 0.2;
  bad->function = [] { return 1; };
  bs->add_task(bad);
  bad_pipeline->add_stage(bs);

  PipelinePtr good_pipeline = long_pipeline(3, 1.0);
  amgr.add_pipelines({bad_pipeline, good_pipeline});
  amgr.run();
  EXPECT_EQ(bad_pipeline->state(), PipelineState::Failed);
  EXPECT_EQ(good_pipeline->state(), PipelineState::Done);
  EXPECT_EQ(amgr.tasks_done(), 3u);
}

TEST(FaultTolerance, CustomRtsFactorySupportsRestart) {
  // Demonstrate RTS-agnosticism: the same failure protocol drives the
  // thread-pool LocalRts.
  AppManagerConfig cfg = fast_config();
  cfg.supervision.rts_restart_limit = 1;
  auto clock = std::make_shared<ScaledClock>(1e-4);
  auto profiler = std::make_shared<Profiler>();
  int instances = 0;
  cfg.rts_factory = [&instances, clock, profiler]() -> rts::RtsPtr {
    ++instances;
    return std::make_shared<rts::LocalRts>(rts::LocalRtsConfig{.workers = 4},
                                           clock, profiler);
  };
  AppManager amgr(cfg);
  amgr.add_pipelines({long_pipeline(3, 2000.0)});
  std::thread killer([&amgr] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    amgr.inject_rts_failure();
  });
  amgr.run();
  killer.join();
  EXPECT_EQ(instances, 2);
  EXPECT_EQ(amgr.tasks_done(), 3u);
}

TEST(FaultTolerance, WfprocessorFaultIsRecoveredBySupervisor) {
  // Crash the WFProcessor mid-run: its workers die, the supervisor restarts
  // it re-attached to the same queues, and the run completes with every
  // task DONE — the paper's component-level fault tolerance (§II-B-4).
  AppManagerConfig cfg = fast_config();
  cfg.supervision.component_restart_limit = 2;
  AppManager amgr(cfg);
  amgr.add_pipelines({long_pipeline(6, 2000.0)});
  std::thread killer([&amgr] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    amgr.inject_component_fault("wfprocessor");
  });
  amgr.run();
  killer.join();
  EXPECT_EQ(amgr.tasks_done(), 6u);
  EXPECT_EQ(amgr.tasks_failed(), 0u);
  EXPECT_GE(amgr.component_restarts(), 1);
  EXPECT_EQ(amgr.pipelines()[0]->state(), PipelineState::Done);
  EXPECT_TRUE(amgr.overheads().failed_component.empty());
}

TEST(FaultTolerance, SynchronizerFaultIsRecoveredBySupervisor) {
  AppManagerConfig cfg = fast_config();
  cfg.supervision.component_restart_limit = 2;
  AppManager amgr(cfg);
  amgr.add_pipelines({long_pipeline(4, 2000.0)});
  std::thread killer([&amgr] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    amgr.inject_component_fault("synchronizer");
  });
  amgr.run();
  killer.join();
  EXPECT_EQ(amgr.tasks_done(), 4u);
  EXPECT_GE(amgr.component_restarts(), 1);
  EXPECT_EQ(amgr.pipelines()[0]->state(), PipelineState::Done);
  // Every task still reached DONE in the state store despite the crash.
  for (const StagePtr& s : amgr.pipelines()[0]->stages()) {
    for (const TaskPtr& t : s->tasks()) {
      EXPECT_EQ(amgr.state_store()->state_of(t->uid()), "DONE");
    }
  }
}

TEST(FaultTolerance, OverheadReportAndTraceSurviveComponentRestart) {
  // A supervisor-driven WFProcessor restart mid-run must leave the overhead
  // report derivable from the causal trace: restart counts recorded, every
  // completed task still carrying a monotone span chain ending in DONE.
  AppManagerConfig cfg = fast_config();
  cfg.supervision.component_restart_limit = 2;
  cfg.obs.metrics = true;
  AppManager amgr(cfg);
  amgr.add_pipelines({long_pipeline(6, 2000.0)});
  std::thread killer([&amgr] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    amgr.inject_component_fault("wfprocessor");
  });
  amgr.run();
  killer.join();
  ASSERT_EQ(amgr.tasks_done(), 6u);

  const OverheadReport report = amgr.overheads();
  EXPECT_GE(report.component_restarts, 1);
  EXPECT_TRUE(report.failed_component.empty());  // recovered, not failed
  EXPECT_GT(report.task_exec_s, 0.0);

  // The supervisor's restart shows up in the live metrics...
  ASSERT_NE(amgr.metrics(), nullptr);
  EXPECT_GE(amgr.metrics()->counter("supervisor.restarts").value(), 1u);
  bool saw_wfp_fault = false;
  for (const obs::MetricSnapshot& m : amgr.metrics()->snapshot()) {
    if (m.name == "component.wfprocessor.faults" && m.value >= 1.0) {
      saw_wfp_fault = true;
    }
  }
  EXPECT_TRUE(saw_wfp_fault);

  // ...and the trace keeps a resolved, monotone chain for every task.
  const obs::Trace& trace = amgr.trace();
  for (const StagePtr& s : amgr.pipelines()[0]->stages()) {
    for (const TaskPtr& t : s->tasks()) {
      ASSERT_TRUE(trace.tasks.count(t->uid()));
      const obs::TaskTrace& tt = trace.tasks.at(t->uid());
      EXPECT_TRUE(tt.resolved_done);
      EXPECT_GE(tt.attempts, 1);
      ASSERT_FALSE(tt.spans.empty());
      std::int64_t prev = tt.spans.front().start_us;
      for (const obs::TaskSpan& span : tt.spans) {
        EXPECT_EQ(span.start_us, prev);
        EXPECT_GE(span.end_us, span.start_us);
        prev = span.end_us;
      }
    }
  }
}

TEST(FaultTolerance, ComponentBudgetExhaustionFailsRun) {
  AppManagerConfig cfg = fast_config();
  cfg.supervision.component_restart_limit = 0;  // any component crash is fatal
  AppManager amgr(cfg);
  amgr.add_pipelines({long_pipeline(2, 5000.0)});
  std::thread killer([&amgr] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    amgr.inject_component_fault("wfprocessor");
  });
  amgr.run();  // must return (aborted), not hang
  killer.join();
  const OverheadReport report = amgr.overheads();
  EXPECT_EQ(report.failed_component, "wfprocessor");
  EXPECT_FALSE(report.failure_reason.empty());
  EXPECT_EQ(report.component_restarts, 0);
  EXPECT_EQ(amgr.tasks_done(), 0u);
}

TEST(FaultTolerance, UnknownComponentNameThrows) {
  AppManagerConfig cfg = fast_config();
  AppManager amgr(cfg);
  EXPECT_THROW(amgr.inject_component_fault("mystery"), ValueError);
}

TEST(FaultTolerance, JournalsSurviveForPostMortem) {
  const std::string dir = ::testing::TempDir() + "/entk_fault_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(wall_now_us());
  std::filesystem::create_directories(dir);
  AppManagerConfig cfg = fast_config();
  cfg.journal_dir = dir;
  cfg.task_retry_limit = 3;
  AppManager amgr(cfg);
  auto p = std::make_shared<Pipeline>("p");
  auto s = std::make_shared<Stage>("s");
  auto flaky = std::make_shared<Task>("flaky");
  auto tries = std::make_shared<std::atomic<int>>(0);
  flaky->duration_s = 0.2;
  flaky->function = [tries] { return ++*tries < 2 ? 1 : 0; };
  s->add_task(flaky);
  p->add_stage(s);
  amgr.add_pipelines({p});
  amgr.run();

  // The journal must contain the FAILED -> DESCRIBED resubmission arc.
  StateStore recovered;
  recovered.recover(amgr.state_store()->journal_path());
  bool saw_failed = false, saw_redescribed = false;
  for (const StateTransaction& t : recovered.history()) {
    if (t.uid == flaky->uid() && t.to_state == "FAILED") saw_failed = true;
    if (t.uid == flaky->uid() && t.from_state == "FAILED" &&
        t.to_state == "DESCRIBED") {
      saw_redescribed = true;
    }
  }
  EXPECT_TRUE(saw_failed);
  EXPECT_TRUE(saw_redescribed);
  EXPECT_EQ(recovered.state_of(flaky->uid()), "DONE");
}

TEST(FaultTolerance, StickyJournalErrorSurfacesAsBrokerFatal) {
  // A broker whose journal flusher hit an I/O error has already lost
  // durability: the Supervisor's broker watch must report it through the
  // fatal handler (component "broker"), not try to restart anything.
  const std::string dir = ::testing::TempDir() + "/entk_fault_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(wall_now_us());
  std::filesystem::create_directories(dir);
  auto broker = std::make_shared<mq::Broker>("b", dir);
  broker->declare_queue("q", mq::QueueOptions{.durable = true});

  Supervisor supervisor(SupervisionConfig{.heartbeat_interval_s = 0.005},
                        std::make_shared<Profiler>());
  std::mutex mutex;
  std::string failed_component, failed_reason;
  std::atomic<bool> fatal{false};
  supervisor.set_fatal_handler(
      [&](const std::string& component, const std::string& reason) {
        std::lock_guard<std::mutex> lock(mutex);
        failed_component = component;
        failed_reason = reason;
        fatal.store(true);
      });
  supervisor.watch_broker(broker);
  supervisor.start();

  // Arm the sticky failure the way a full disk would: the next probe must
  // see non-empty broker health.
  broker->journal_writer()->inject_io_error("journal flush: disk full");
  for (int spins = 0; spins < 1000 && !fatal.load(); ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  supervisor.stop();
  ASSERT_TRUE(fatal.load());
  {
    std::lock_guard<std::mutex> lock(mutex);
    EXPECT_EQ(failed_component, "broker");
    EXPECT_NE(failed_reason.find("disk full"), std::string::npos);
  }
  // The same sticky error surfaces on close: the durable backlog may be
  // incomplete and callers must learn it.
  EXPECT_THROW(broker->close(), MqError);
}

}  // namespace
}  // namespace entk
