// entk_run: execute a PST application described in a JSON file.
//
// The JSON schema mirrors the programmatic API one-to-one:
//
// {
//   "resource": {
//     "resource": "ornl.titan",        // CI name, or "local.localhost"
//     "cpus": 64,                      // or "nodes": N
//     "walltime_s": 7200,
//     "task_retry_limit": 2,
//     "clock_scale": 0.001,            // wall seconds per virtual second
//     "local_processes": false         // true: run absolute-path
//   },                                 //   executables as real processes
//   "pipelines": [
//     { "name": "p0",
//       "stages": [
//         { "name": "simulate",
//           "tasks": [
//             { "name": "t0",
//               "executable": "sleep", "duration_s": 60,
//               "cores": 1, "gpus": 0, "exclusive_nodes": false,
//               "arguments": ["60"],
//               "retry_limit": -1,
//               "inputs":  [ {"source": "a", "target": "b",
//                             "action": "copy|link|transfer",
//                             "bytes": 1024} ],
//               "outputs": [ ... ] } ] } ] } ]
// }
//
// With "local_processes": true the workflow runs on the LocalRts thread
// pool in real time and absolute-path executables are actually spawned;
// otherwise it runs on the simulated pilot RTS against the named CI.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/core/app_manager.hpp"
#include "src/ensemble/controller.hpp"
#include "src/ensemble/rules_json.hpp"
#include "src/rts/local_rts.hpp"

namespace {

using namespace entk;

saga::StagingDirective parse_directive(const json::Value& v) {
  saga::StagingDirective d;
  d.source = v.get_string("source", "");
  d.target = v.get_string("target", "");
  const std::string action = v.get_string("action", "copy");
  if (action == "link") d.action = saga::StagingAction::Link;
  else if (action == "transfer") d.action = saga::StagingAction::Transfer;
  d.bytes = static_cast<std::uint64_t>(v.get_int("bytes", 0));
  return d;
}

TaskPtr parse_task(const json::Value& v) {
  auto task = std::make_shared<Task>(v.get_string("name", "task"));
  task->executable = v.get_string("executable", "");
  if (v.contains("arguments")) {
    for (const json::Value& a : v.at("arguments").as_array()) {
      task->arguments.push_back(a.as_string());
    }
  }
  task->duration_s = v.get_double("duration_s", 0.0);
  task->cpu_reqs.processes = static_cast<int>(v.get_int("cores", 1));
  task->gpu_reqs.processes = static_cast<int>(v.get_int("gpus", 0));
  task->exclusive_nodes = v.get_bool("exclusive_nodes", false);
  task->retry_limit = static_cast<int>(v.get_int("retry_limit", -1));
  const std::string group = v.get_string("group", "");
  if (!group.empty()) task->metadata["ensemble"]["group"] = group;
  if (v.contains("inputs")) {
    for (const json::Value& d : v.at("inputs").as_array()) {
      task->input_staging.push_back(parse_directive(d));
    }
  }
  if (v.contains("outputs")) {
    for (const json::Value& d : v.at("outputs").as_array()) {
      task->output_staging.push_back(parse_directive(d));
    }
  }
  return task;
}

std::vector<PipelinePtr> parse_pipelines(const json::Value& doc) {
  std::vector<PipelinePtr> pipelines;
  for (const json::Value& pv : doc.at("pipelines").as_array()) {
    auto pipeline = std::make_shared<Pipeline>(pv.get_string("name", "p"));
    for (const json::Value& sv : pv.at("stages").as_array()) {
      auto stage = std::make_shared<Stage>(sv.get_string("name", "s"));
      for (const json::Value& tv : sv.at("tasks").as_array()) {
        stage->add_task(parse_task(tv));
      }
      pipeline->add_stage(stage);
    }
    pipelines.push_back(std::move(pipeline));
  }
  return pipelines;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: entk_run <workflow.json> [--profile trace.csv]\n"
                 "                [--component-restart-limit N]\n"
                 "                [--trace-out trace.json]\n"
                 "                [--metrics-out metrics.jsonl]\n"
                 "                [--journal-dir DIR]\n"
                 "                [--journal-batch-bytes N]\n"
                 "                [--journal-max-delay-ms MS]\n"
                 "                [--broker HOST:PORT] [--workers]\n"
                 "                [--tenant ID]\n"
                 "                [--rules rules.json]\n"
                 "                [--ensemble-journal decisions.jsonl]\n"
                 "       executes the PST application described in the file;\n"
                 "       --profile dumps the run's event trace as CSV for\n"
                 "       post-mortem analysis (src/analytics);\n"
                 "       --component-restart-limit caps how often the\n"
                 "       supervisor restarts a crashed EnTK component before\n"
                 "       failing the run (default 2);\n"
                 "       --trace-out writes the causal task trace as Chrome\n"
                 "       trace_event JSON (chrome://tracing / Perfetto);\n"
                 "       --metrics-out writes the metrics registry (broker,\n"
                 "       component, RTS counters and latency histograms) as\n"
                 "       JSONL and enables live metrics for the run;\n"
                 "       --journal-dir makes broker queues durable, writing\n"
                 "       the group-commit journal to DIR; the flush policy\n"
                 "       is tuned with --journal-batch-bytes (default 256k)\n"
                 "       and --journal-max-delay-ms (default 2, 0 = sync\n"
                 "       every append);\n"
                 "       --broker runs the workflow against an entk_broker\n"
                 "       daemon at HOST:PORT instead of the in-process\n"
                 "       broker (broker durability is then the daemon's\n"
                 "       --journal-dir);\n"
                 "       --workers (requires --broker) runs no local\n"
                 "       execution stack: tasks are published as\n"
                 "       self-contained units and executed by entk_worker\n"
                 "       daemons connected to the same broker;\n"
                 "       --tenant (requires --broker) runs the workflow\n"
                 "       inside tenant ID's namespace on a shared daemon —\n"
                 "       queue names never collide with other ensembles',\n"
                 "       and the daemon's per-tenant quotas apply;\n"
                 "       --rules attaches an ensemble controller evaluating\n"
                 "       the declarative rule file (triggers on task/stage\n"
                 "       completions, metric thresholds and timers; actions\n"
                 "       cancel_group, resize_pilot, set_param, finish) —\n"
                 "       tag tasks with \"group\" to target them;\n"
                 "       --ensemble-journal appends every rule firing as a\n"
                 "       JSONL decision record for replay/debugging\n");
    return 2;
  }
  std::string profile_path;
  std::string trace_out;
  std::string metrics_out;
  std::string journal_dir;
  std::string broker_endpoint;
  std::string tenant;
  std::string rules_path;
  std::string ensemble_journal;
  long journal_batch_bytes = -1;
  double journal_max_delay_ms = -1.0;
  int component_restart_limit = -1;
  bool remote_workers = false;
  // Valueless flags first (the value-taking loop below stops one short).
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--workers") remote_workers = true;
  }
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--profile") profile_path = argv[i + 1];
    if (std::string(argv[i]) == "--trace-out") trace_out = argv[i + 1];
    if (std::string(argv[i]) == "--metrics-out") metrics_out = argv[i + 1];
    if (std::string(argv[i]) == "--journal-dir") journal_dir = argv[i + 1];
    if (std::string(argv[i]) == "--broker") broker_endpoint = argv[i + 1];
    if (std::string(argv[i]) == "--tenant") tenant = argv[i + 1];
    if (std::string(argv[i]) == "--rules") rules_path = argv[i + 1];
    if (std::string(argv[i]) == "--ensemble-journal") {
      ensemble_journal = argv[i + 1];
    }
    if (std::string(argv[i]) == "--journal-batch-bytes") {
      journal_batch_bytes = std::atol(argv[i + 1]);
    }
    if (std::string(argv[i]) == "--journal-max-delay-ms") {
      journal_max_delay_ms = std::atof(argv[i + 1]);
    }
    if (std::string(argv[i]) == "--component-restart-limit") {
      component_restart_limit = std::atoi(argv[i + 1]);
    }
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "entk_run: cannot read %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  try {
    const json::Value doc = json::parse(buffer.str());

    AppManagerConfig config;
    bool local_processes = false;
    if (doc.contains("resource")) {
      const json::Value& r = doc.at("resource");
      config.resource.resource = r.get_string("resource", "local.localhost");
      config.resource.cpus = static_cast<int>(r.get_int("cpus", 8));
      config.resource.nodes = static_cast<int>(r.get_int("nodes", 0));
      config.resource.walltime_s = r.get_double("walltime_s", 7200.0);
      config.task_retry_limit =
          static_cast<int>(r.get_int("task_retry_limit", 0));
      config.clock_scale = r.get_double("clock_scale", 1e-3);
      local_processes = r.get_bool("local_processes", false);
    }
    if (component_restart_limit >= 0) {
      config.supervision.component_restart_limit = component_restart_limit;
    }
    config.obs.trace_out = trace_out;
    config.obs.metrics_out = metrics_out;
    config.journal_dir = journal_dir;
    config.broker_endpoint = broker_endpoint;
    if (!tenant.empty() && broker_endpoint.empty()) {
      std::fprintf(stderr, "entk_run: --tenant requires --broker\n");
      return 2;
    }
    config.tenant = tenant;
    config.remote_workers = remote_workers;
    if (journal_batch_bytes >= 0) {
      config.journal.max_batch_bytes =
          static_cast<std::size_t>(journal_batch_bytes);
    }
    if (journal_max_delay_ms == 0.0) {
      config.journal.sync_every_append = true;  // 0 = flush on every append
    } else if (journal_max_delay_ms > 0.0) {
      config.journal.max_delay_s = journal_max_delay_ms * 1e-3;
    }
    if (local_processes) {
      // Real-time local execution with actual process spawning.
      auto clock = std::make_shared<RealClock>();
      auto profiler = std::make_shared<Profiler>();
      const int workers = config.resource.cpus;
      config.rts_factory = [clock, profiler, workers]() -> rts::RtsPtr {
        return std::make_shared<rts::LocalRts>(
            rts::LocalRtsConfig{.workers = workers}, clock, profiler);
      };
      config.clock_scale = 1.0;
    }

    ensemble::ControllerPtr controller;
    if (!rules_path.empty()) {
      ensemble::ControllerConfig ens_cfg;
      ens_cfg.journal_path = ensemble_journal;
      controller = ensemble::Controller::create(ens_cfg);
      for (ensemble::Rule& rule : ensemble::rules_from_file(rules_path)) {
        controller->add_rule(std::move(rule));
      }
      controller->attach(config);
    } else if (!ensemble_journal.empty()) {
      std::fprintf(stderr, "entk_run: --ensemble-journal requires --rules\n");
      return 2;
    }

    AppManager appman(config);
    appman.add_pipelines(parse_pipelines(doc));
    appman.run();

    if (!profile_path.empty()) {
      appman.profiler()->dump_csv(profile_path);
      std::printf("entk_run: profile trace written to %s\n",
                  profile_path.c_str());
    }
    const OverheadReport report = appman.overheads();
    std::printf("entk_run: %zu done, %zu failed, %zu resubmissions\n",
                report.tasks_done, report.tasks_failed, report.resubmissions);
    if (controller) {
      std::printf("entk_run: %zu ensemble decision(s)%s%s\n",
                  controller->decision_count(),
                  ensemble_journal.empty() ? "" : " journaled to ",
                  ensemble_journal.c_str());
    }
    std::printf("%s", report.to_table().c_str());
    for (const PipelinePtr& p : appman.pipelines()) {
      std::printf("pipeline %-16s %s\n", p->name.c_str(),
                  to_string(p->state()));
    }
    return report.tasks_failed == 0 && report.failed_component.empty() ? 0
                                                                       : 1;
  } catch (const json::ParseError& e) {
    std::fprintf(stderr, "entk_run: invalid JSON: %s\n", e.what());
    return 2;
  } catch (const EnTKError& e) {
    std::fprintf(stderr, "entk_run: %s\n", e.what());
    return 2;
  }
}
