// entk_trace: post-mortem analysis of a recorded profile trace.
//
// Reads a profiler CSV (entk_run --profile, Profiler::dump_csv), stitches
// it into the causal task-span model (src/obs/trace.hpp) and either
// summarizes the per-span latency distribution or re-exports the run as
// Chrome trace_event JSON:
//
//   entk_trace run.csv --summarize
//   entk_trace run.csv --trace-out run.trace.json
//
// --summarize prints one row per chain segment (enqueue / schedule / exec /
// sync / done) with count, p50, p95 and max in microseconds, derived from
// the same fixed-bucket histograms AppManager fills when live metrics are
// on — so a recorded run and a live run summarize identically.
#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/error.hpp"
#include "src/common/profiler.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

int main(int argc, char** argv) {
  bool summarize = false;
  std::string csv_path;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--summarize") == 0) {
      summarize = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (csv_path.empty() && argv[i][0] != '-') {
      csv_path = argv[i];
    } else {
      csv_path.clear();
      break;
    }
  }
  if (csv_path.empty() || (!summarize && trace_out.empty())) {
    std::fprintf(stderr,
                 "usage: entk_trace <profile.csv> [--summarize]\n"
                 "                  [--trace-out trace.json]\n"
                 "       stitches a recorded profiler CSV into the causal\n"
                 "       task-span model; --summarize prints the per-span\n"
                 "       latency table (count/p50/p95/max us), --trace-out\n"
                 "       exports Chrome trace_event JSON\n");
    return 2;
  }

  try {
    const std::vector<entk::ProfileEvent> events =
        entk::read_profile_csv(csv_path);
    const entk::obs::Trace trace = entk::obs::build_trace(events);
    std::printf("entk_trace: %zu events, %zu tasks, %zu stages, "
                "%zu pipelines\n",
                events.size(), trace.tasks.size(), trace.stages.size(),
                trace.pipelines.size());
    if (summarize) {
      entk::obs::MetricsRegistry registry;
      entk::obs::fill_span_histograms(trace, registry);
      std::printf("%s", entk::obs::span_latency_table(registry).c_str());
    }
    if (!trace_out.empty()) {
      entk::obs::write_chrome_trace(trace, trace_out);
      std::printf("entk_trace: Chrome trace written to %s\n",
                  trace_out.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "entk_trace: %s\n", e.what());
    return 2;
  }
}
