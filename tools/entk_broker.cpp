// entk_broker: the standalone broker daemon of the networked deployment.
//
// Runs one mq::Broker behind a net::BrokerServer and serves any number of
// entk_run clients over the framed TCP protocol — the paper's deployment
// topology, where the RabbitMQ server runs apart from the workflow
// manager. With --journal-dir the queues are durable (group-commit
// journal); after a crash, restarting with --recover <journal> replays the
// published-but-unacked backlog so reconnecting clients resume where they
// left off. SIGINT/SIGTERM drain gracefully: pending responses are
// flushed, unacked deliveries are requeued (journaled), then the broker
// closes.
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "src/common/profiler.hpp"
#include "src/mq/broker.hpp"
#include "src/mq/tenant.hpp"
#include "src/net/broker_server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

int usage() {
  std::fprintf(
      stderr,
      "usage: entk_broker [--port N] [--bind ADDR]\n"
      "                   [--shards N]\n"
      "                   [--journal-dir DIR]\n"
      "                   [--journal-batch-bytes N]\n"
      "                   [--journal-max-delay-ms MS]\n"
      "                   [--recover JOURNAL]\n"
      "                   [--worker-ttl S]\n"
      "                   [--stats-interval S]\n"
      "                   [--tenant-quota ID:DEPTH:BYTES:RATE]\n"
      "                   [--max-conns N]\n"
      "       serves broker queues to entk_run --broker clients and\n"
      "       entk_worker daemons over TCP.\n"
      "       --port 0 (default) picks an ephemeral port, printed on the\n"
      "       'listening' line.\n"
      "       --shards N splits the queue namespace across N independent\n"
      "       broker shards; --shards 0 means one shard per hardware\n"
      "       thread (capped by the core count); default 1 keeps the\n"
      "       single-shard broker.\n"
      "       --journal-dir makes every queue durable via the group-commit\n"
      "       journal (flush policy tuned like entk_run); --recover\n"
      "       replays a previous daemon's journal, restoring the unacked\n"
      "       backlog before serving (point it at the same\n"
      "       DIR/entk_broker.journal to resume after a crash).\n"
      "       --worker-ttl S drops connections of identified workers\n"
      "       silent for S seconds, requeueing their unacked deliveries\n"
      "       (0 disables; default 5).\n"
      "       --stats-interval S prints a periodic stats line (conns,\n"
      "       requeued_on_disconnect, queue depths) every S seconds\n"
      "       (0 disables; default 30). With tenants bound, each interval\n"
      "       also prints one 'tenant' line per non-default tenant.\n"
      "       --tenant-quota ID:DEPTH:BYTES:RATE (repeatable) caps tenant\n"
      "       ID at DEPTH ready+unacked messages, BYTES backlog bytes and\n"
      "       RATE publishes/second (0 = unlimited for any field);\n"
      "       over-quota publishes get a retry-after kErrQuota instead of\n"
      "       consuming global capacity. Tenants not named here are\n"
      "       auto-registered unlimited on first hello.\n"
      "       --max-conns N refuses connections past N with a clean error\n"
      "       frame (0 = unlimited; default 0).\n"
      "       SIGINT/SIGTERM shut down gracefully.\n");
  return 2;
}

// Strict numeric parsers: the whole token must be a number (atol/atof
// silently read garbage as 0, turning a typo like "--shards x4" into a
// very different daemon).
bool parse_long(const char* s, long* out) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_double(const char* s, double* out) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

/// "ID:DEPTH:BYTES:RATE" -> (id, quota). Field validation (id charset)
/// happens at register_tenant; this only owns the numeric split.
bool parse_tenant_quota(const std::string& spec, std::string* id,
                        entk::mq::TenantQuota* quota) {
  const std::size_t c1 = spec.find(':');
  if (c1 == std::string::npos) return false;
  const std::size_t c2 = spec.find(':', c1 + 1);
  if (c2 == std::string::npos) return false;
  const std::size_t c3 = spec.find(':', c2 + 1);
  if (c3 == std::string::npos) return false;
  *id = spec.substr(0, c1);
  long depth = 0, bytes = 0;
  double rate = 0.0;
  if (!parse_long(spec.substr(c1 + 1, c2 - c1 - 1).c_str(), &depth) ||
      depth < 0) {
    return false;
  }
  if (!parse_long(spec.substr(c2 + 1, c3 - c2 - 1).c_str(), &bytes) ||
      bytes < 0) {
    return false;
  }
  if (!parse_double(spec.substr(c3 + 1).c_str(), &rate) || rate < 0.0) {
    return false;
  }
  quota->max_queue_depth = static_cast<std::size_t>(depth);
  quota->max_bytes = static_cast<std::size_t>(bytes);
  quota->publish_rate = rate;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace entk;

  std::string bind_address = "127.0.0.1";
  long port = 0;
  std::string journal_dir;
  std::string recover_path;
  mq::JournalConfig journal;
  long shards = 1;
  double worker_ttl_s = 5.0;
  double stats_interval_s = 30.0;
  long max_conns = 0;
  std::vector<std::pair<std::string, mq::TenantQuota>> tenant_quotas;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") return usage();
    if (i + 1 >= argc) return usage();  // every flag takes a value
    const char* value = argv[i + 1];
    if (flag == "--port") {
      if (!parse_long(value, &port) || port < 0 || port > 0xffff) {
        return usage();
      }
    } else if (flag == "--bind") {
      bind_address = value;
    } else if (flag == "--shards") {
      if (!parse_long(value, &shards) || shards < 0) return usage();
    } else if (flag == "--journal-dir") {
      journal_dir = value;
    } else if (flag == "--journal-batch-bytes") {
      long bytes = 0;
      if (!parse_long(value, &bytes) || bytes < 0) return usage();
      journal.max_batch_bytes = static_cast<std::size_t>(bytes);
    } else if (flag == "--journal-max-delay-ms") {
      double ms = 0.0;
      if (!parse_double(value, &ms) || ms < 0.0) return usage();
      if (ms == 0.0) {
        journal.sync_every_append = true;
      } else {
        journal.max_delay_s = ms * 1e-3;
      }
    } else if (flag == "--recover") {
      recover_path = value;
    } else if (flag == "--worker-ttl") {
      if (!parse_double(value, &worker_ttl_s) || worker_ttl_s < 0.0) {
        return usage();
      }
    } else if (flag == "--stats-interval") {
      if (!parse_double(value, &stats_interval_s) || stats_interval_s < 0.0) {
        return usage();
      }
    } else if (flag == "--tenant-quota") {
      std::string id;
      mq::TenantQuota quota;
      if (!parse_tenant_quota(value, &id, &quota)) return usage();
      tenant_quotas.emplace_back(std::move(id), quota);
    } else if (flag == "--max-conns") {
      if (!parse_long(value, &max_conns) || max_conns < 0) return usage();
    } else {
      return usage();
    }
    ++i;
  }

  try {
    // A fixed broker name keeps the journal path stable
    // (DIR/entk_broker.journal) across daemon restarts, so --recover of
    // that same path continues the journal it replays: recovery publishes
    // straight into the queues without re-journaling, and later acks
    // append to the records already on disk.
    auto broker = std::make_shared<mq::Broker>(
        "entk_broker", journal_dir, journal,
        static_cast<std::size_t>(shards));
    if (!recover_path.empty()) {
      const std::size_t restored = broker->recover(recover_path);
      std::printf("entk_broker: recovered %zu message(s) from %s\n", restored,
                  recover_path.c_str());
    }

    // Installed before the 'listening' line goes out: a supervisor that
    // reacts to that line may signal us immediately, and the default
    // disposition would kill the daemon without a drain.
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    auto tenants = std::make_shared<mq::TenantRegistry>();
    for (const auto& [id, quota] : tenant_quotas) {
      tenants->register_tenant(id, quota);
      std::printf(
          "entk_broker: tenant %s quota depth=%zu bytes=%zu rate=%.1f/s\n",
          id.c_str(), quota.max_queue_depth, quota.max_bytes,
          quota.publish_rate);
    }

    net::BrokerServerConfig server_cfg;
    server_cfg.bind_address = bind_address;
    server_cfg.port = static_cast<std::uint16_t>(port);
    server_cfg.worker_ttl_s = worker_ttl_s;
    server_cfg.tenants = tenants;
    server_cfg.max_connections = static_cast<std::size_t>(max_conns);
    net::BrokerServer server(broker, server_cfg,
                             std::make_shared<Profiler>());
    server.start();

    // Parsed by spawning tests/scripts to learn the ephemeral port: keep
    // the format stable and flush before blocking.
    std::printf("entk_broker: listening on %s:%u\n", bind_address.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    auto next_stats = std::chrono::steady_clock::now();
    auto last_stats = next_stats;
    if (stats_interval_s > 0) {
      next_stats += std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(stats_interval_s));
    }
    // published() as of the previous stats pass, per tenant: the delta
    // over the interval is the admitted-rate gauge.
    std::map<std::string, unsigned long long> prev_published;
    while (g_stop == 0) {
      if (server.state() == ComponentState::Failed) {
        std::fprintf(stderr, "entk_broker: server failed: %s\n",
                     server.fault_reason().c_str());
        broker->close();
        return 1;
      }
      if (stats_interval_s > 0 &&
          std::chrono::steady_clock::now() >= next_stats) {
        std::size_t ready = 0, unacked = 0, queues = 0;
        for (const mq::QueueDepth& d : broker->depth_snapshot()) {
          ++queues;
          ready += d.ready;
          unacked += d.unacked;
        }
        std::printf(
            "entk_broker: stats conns=%zu "
            "net.server.requeued_on_disconnect=%llu queues=%zu ready=%zu "
            "unacked=%zu\n",
            server.connection_count(),
            static_cast<unsigned long long>(server.requeued_on_disconnect()),
            queues, ready, unacked);
        const auto now = std::chrono::steady_clock::now();
        const double elapsed_s =
            std::chrono::duration<double>(now - last_stats).count();
        last_stats = now;
        for (const auto& tenant : server.tenants()->tenants()) {
          // Refresh the backlog gauges from a prefix-filtered snapshot
          // (cheap: lower_bound walk, not a full-namespace scan) and
          // derive the admitted rate from the published delta.
          std::size_t t_depth = 0, t_bytes = 0;
          for (const mq::QueueDepth& d :
               broker->depth_snapshot(tenant->queue_prefix())) {
            t_depth += d.ready + d.unacked;
            t_bytes += d.bytes;
          }
          tenant->observe_backlog(t_depth, t_bytes);
          const auto published =
              static_cast<unsigned long long>(tenant->published());
          const double rate =
              elapsed_s > 0
                  ? static_cast<double>(published -
                                        prev_published[tenant->id()]) /
                        elapsed_s
                  : 0.0;
          prev_published[tenant->id()] = published;
          tenant->observe_publish_rate(rate);
          const mq::TenantStats st = tenant->stats();
          std::printf(
              "entk_broker: tenant %s depth=%zu bytes=%zu published=%llu "
              "throttled=%llu rate=%.1f/s\n",
              st.id.c_str(), st.depth, st.bytes,
              static_cast<unsigned long long>(st.published),
              static_cast<unsigned long long>(st.throttled), st.publish_rate);
        }
        std::fflush(stdout);
        next_stats += std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(stats_interval_s));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    std::printf("entk_broker: draining\n");
    std::fflush(stdout);
    server.stop();   // flushes responses, requeues orphaned deliveries
    broker->close(); // final journal flush
    return 0;
  } catch (const EnTKError& e) {
    std::fprintf(stderr, "entk_broker: %s\n", e.what());
    return 2;
  }
}
