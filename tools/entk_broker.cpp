// entk_broker: the standalone broker daemon of the networked deployment.
//
// Runs one mq::Broker behind a net::BrokerServer and serves any number of
// entk_run clients over the framed TCP protocol — the paper's deployment
// topology, where the RabbitMQ server runs apart from the workflow
// manager. With --journal-dir the queues are durable (group-commit
// journal); after a crash, restarting with --recover <journal> replays the
// published-but-unacked backlog so reconnecting clients resume where they
// left off. SIGINT/SIGTERM drain gracefully: pending responses are
// flushed, unacked deliveries are requeued (journaled), then the broker
// closes.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/common/profiler.hpp"
#include "src/mq/broker.hpp"
#include "src/net/broker_server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

int usage() {
  std::fprintf(
      stderr,
      "usage: entk_broker [--port N] [--bind ADDR]\n"
      "                   [--shards N]\n"
      "                   [--journal-dir DIR]\n"
      "                   [--journal-batch-bytes N]\n"
      "                   [--journal-max-delay-ms MS]\n"
      "                   [--recover JOURNAL]\n"
      "       serves broker queues to entk_run --broker clients over TCP;\n"
      "       --port 0 (default) picks an ephemeral port, printed on the\n"
      "       'listening' line; --shards N splits the queue namespace\n"
      "       across N independent broker shards (0 = one per hardware\n"
      "       thread, capped; default 1); --journal-dir makes every queue\n"
      "       durable\n"
      "       via the group-commit journal (flush policy tuned like\n"
      "       entk_run); --recover replays a previous daemon's journal,\n"
      "       restoring the unacked backlog before serving (point it at\n"
      "       the same DIR/entk_broker.journal to resume after a crash).\n"
      "       SIGINT/SIGTERM shut down gracefully.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace entk;

  std::string bind_address = "127.0.0.1";
  long port = 0;
  std::string journal_dir;
  std::string recover_path;
  mq::JournalConfig journal;
  long shards = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") return usage();
    if (i + 1 >= argc) return usage();  // every flag takes a value
    const char* value = argv[i + 1];
    if (flag == "--port") {
      port = std::atol(value);
      if (port < 0 || port > 0xffff) return usage();
    } else if (flag == "--bind") {
      bind_address = value;
    } else if (flag == "--shards") {
      shards = std::atol(value);
      if (shards < 0) return usage();
    } else if (flag == "--journal-dir") {
      journal_dir = value;
    } else if (flag == "--journal-batch-bytes") {
      journal.max_batch_bytes = static_cast<std::size_t>(std::atol(value));
    } else if (flag == "--journal-max-delay-ms") {
      const double ms = std::atof(value);
      if (ms == 0.0) {
        journal.sync_every_append = true;
      } else {
        journal.max_delay_s = ms * 1e-3;
      }
    } else if (flag == "--recover") {
      recover_path = value;
    } else {
      return usage();
    }
    ++i;
  }

  try {
    // A fixed broker name keeps the journal path stable
    // (DIR/entk_broker.journal) across daemon restarts, so --recover of
    // that same path continues the journal it replays: recovery publishes
    // straight into the queues without re-journaling, and later acks
    // append to the records already on disk.
    auto broker = std::make_shared<mq::Broker>(
        "entk_broker", journal_dir, journal,
        static_cast<std::size_t>(shards));
    if (!recover_path.empty()) {
      const std::size_t restored = broker->recover(recover_path);
      std::printf("entk_broker: recovered %zu message(s) from %s\n", restored,
                  recover_path.c_str());
    }

    net::BrokerServerConfig server_cfg;
    server_cfg.bind_address = bind_address;
    server_cfg.port = static_cast<std::uint16_t>(port);
    net::BrokerServer server(broker, server_cfg,
                             std::make_shared<Profiler>());
    server.start();

    // Parsed by spawning tests/scripts to learn the ephemeral port: keep
    // the format stable and flush before blocking.
    std::printf("entk_broker: listening on %s:%u\n", bind_address.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    while (g_stop == 0) {
      if (server.state() == ComponentState::Failed) {
        std::fprintf(stderr, "entk_broker: server failed: %s\n",
                     server.fault_reason().c_str());
        broker->close();
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    std::printf("entk_broker: draining\n");
    std::fflush(stdout);
    server.stop();   // flushes responses, requeues orphaned deliveries
    broker->close(); // final journal flush
    return 0;
  } catch (const EnTKError& e) {
    std::fprintf(stderr, "entk_broker: %s\n", e.what());
    return 2;
  }
}
