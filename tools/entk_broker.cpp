// entk_broker: the standalone broker daemon of the networked deployment.
//
// Runs one mq::Broker behind a net::BrokerServer and serves any number of
// entk_run clients over the framed TCP protocol — the paper's deployment
// topology, where the RabbitMQ server runs apart from the workflow
// manager. With --journal-dir the queues are durable (group-commit
// journal); after a crash, restarting with --recover <journal> replays the
// published-but-unacked backlog so reconnecting clients resume where they
// left off. SIGINT/SIGTERM drain gracefully: pending responses are
// flushed, unacked deliveries are requeued (journaled), then the broker
// closes.
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/common/profiler.hpp"
#include "src/mq/broker.hpp"
#include "src/net/broker_server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

int usage() {
  std::fprintf(
      stderr,
      "usage: entk_broker [--port N] [--bind ADDR]\n"
      "                   [--shards N]\n"
      "                   [--journal-dir DIR]\n"
      "                   [--journal-batch-bytes N]\n"
      "                   [--journal-max-delay-ms MS]\n"
      "                   [--recover JOURNAL]\n"
      "                   [--worker-ttl S]\n"
      "                   [--stats-interval S]\n"
      "       serves broker queues to entk_run --broker clients and\n"
      "       entk_worker daemons over TCP.\n"
      "       --port 0 (default) picks an ephemeral port, printed on the\n"
      "       'listening' line.\n"
      "       --shards N splits the queue namespace across N independent\n"
      "       broker shards; --shards 0 means one shard per hardware\n"
      "       thread (capped by the core count); default 1 keeps the\n"
      "       single-shard broker.\n"
      "       --journal-dir makes every queue durable via the group-commit\n"
      "       journal (flush policy tuned like entk_run); --recover\n"
      "       replays a previous daemon's journal, restoring the unacked\n"
      "       backlog before serving (point it at the same\n"
      "       DIR/entk_broker.journal to resume after a crash).\n"
      "       --worker-ttl S drops connections of identified workers\n"
      "       silent for S seconds, requeueing their unacked deliveries\n"
      "       (0 disables; default 5).\n"
      "       --stats-interval S prints a periodic stats line (conns,\n"
      "       requeued_on_disconnect, queue depths) every S seconds\n"
      "       (0 disables; default 30).\n"
      "       SIGINT/SIGTERM shut down gracefully.\n");
  return 2;
}

// Strict numeric parsers: the whole token must be a number (atol/atof
// silently read garbage as 0, turning a typo like "--shards x4" into a
// very different daemon).
bool parse_long(const char* s, long* out) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_double(const char* s, double* out) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace entk;

  std::string bind_address = "127.0.0.1";
  long port = 0;
  std::string journal_dir;
  std::string recover_path;
  mq::JournalConfig journal;
  long shards = 1;
  double worker_ttl_s = 5.0;
  double stats_interval_s = 30.0;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") return usage();
    if (i + 1 >= argc) return usage();  // every flag takes a value
    const char* value = argv[i + 1];
    if (flag == "--port") {
      if (!parse_long(value, &port) || port < 0 || port > 0xffff) {
        return usage();
      }
    } else if (flag == "--bind") {
      bind_address = value;
    } else if (flag == "--shards") {
      if (!parse_long(value, &shards) || shards < 0) return usage();
    } else if (flag == "--journal-dir") {
      journal_dir = value;
    } else if (flag == "--journal-batch-bytes") {
      long bytes = 0;
      if (!parse_long(value, &bytes) || bytes < 0) return usage();
      journal.max_batch_bytes = static_cast<std::size_t>(bytes);
    } else if (flag == "--journal-max-delay-ms") {
      double ms = 0.0;
      if (!parse_double(value, &ms) || ms < 0.0) return usage();
      if (ms == 0.0) {
        journal.sync_every_append = true;
      } else {
        journal.max_delay_s = ms * 1e-3;
      }
    } else if (flag == "--recover") {
      recover_path = value;
    } else if (flag == "--worker-ttl") {
      if (!parse_double(value, &worker_ttl_s) || worker_ttl_s < 0.0) {
        return usage();
      }
    } else if (flag == "--stats-interval") {
      if (!parse_double(value, &stats_interval_s) || stats_interval_s < 0.0) {
        return usage();
      }
    } else {
      return usage();
    }
    ++i;
  }

  try {
    // A fixed broker name keeps the journal path stable
    // (DIR/entk_broker.journal) across daemon restarts, so --recover of
    // that same path continues the journal it replays: recovery publishes
    // straight into the queues without re-journaling, and later acks
    // append to the records already on disk.
    auto broker = std::make_shared<mq::Broker>(
        "entk_broker", journal_dir, journal,
        static_cast<std::size_t>(shards));
    if (!recover_path.empty()) {
      const std::size_t restored = broker->recover(recover_path);
      std::printf("entk_broker: recovered %zu message(s) from %s\n", restored,
                  recover_path.c_str());
    }

    // Installed before the 'listening' line goes out: a supervisor that
    // reacts to that line may signal us immediately, and the default
    // disposition would kill the daemon without a drain.
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    net::BrokerServerConfig server_cfg;
    server_cfg.bind_address = bind_address;
    server_cfg.port = static_cast<std::uint16_t>(port);
    server_cfg.worker_ttl_s = worker_ttl_s;
    net::BrokerServer server(broker, server_cfg,
                             std::make_shared<Profiler>());
    server.start();

    // Parsed by spawning tests/scripts to learn the ephemeral port: keep
    // the format stable and flush before blocking.
    std::printf("entk_broker: listening on %s:%u\n", bind_address.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    auto next_stats = std::chrono::steady_clock::now();
    if (stats_interval_s > 0) {
      next_stats += std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(stats_interval_s));
    }
    while (g_stop == 0) {
      if (server.state() == ComponentState::Failed) {
        std::fprintf(stderr, "entk_broker: server failed: %s\n",
                     server.fault_reason().c_str());
        broker->close();
        return 1;
      }
      if (stats_interval_s > 0 &&
          std::chrono::steady_clock::now() >= next_stats) {
        std::size_t ready = 0, unacked = 0, queues = 0;
        for (const mq::QueueDepth& d : broker->depth_snapshot()) {
          ++queues;
          ready += d.ready;
          unacked += d.unacked;
        }
        std::printf(
            "entk_broker: stats conns=%zu "
            "net.server.requeued_on_disconnect=%llu queues=%zu ready=%zu "
            "unacked=%zu\n",
            server.connection_count(),
            static_cast<unsigned long long>(server.requeued_on_disconnect()),
            queues, ready, unacked);
        std::fflush(stdout);
        next_stats += std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(stats_interval_s));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    std::printf("entk_broker: draining\n");
    std::fflush(stdout);
    server.stop();   // flushes responses, requeues orphaned deliveries
    broker->close(); // final journal flush
    return 0;
  } catch (const EnTKError& e) {
    std::fprintf(stderr, "entk_broker: %s\n", e.what());
    return 2;
  }
}
