// entk_worker: a standalone execution-plane daemon.
//
// Connects to an entk_broker daemon, announces itself as a worker, and
// runs the full Rmgr/Emgr/RtsCallback stack against the shared Pending
// queue — so N worker processes (on N machines) drain one ensemble
// concurrently while the entk_run side only publishes work and tracks
// states. Deliveries are held unacked until their units complete: a
// worker killed mid-task loses nothing, the broker requeues its claims
// for the survivors (at-least-once; the manager deduplicates).
//
// SIGINT/SIGTERM request a graceful drain: stop fetching, finish (or
// give back) in-flight work, deregister, exit 0.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/error.hpp"
#include "src/worker/worker_daemon.hpp"

namespace {

entk::worker::WorkerDaemon* g_daemon = nullptr;

void handle_signal(int) {
  if (g_daemon != nullptr) g_daemon->request_drain();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: entk_worker --broker HOST:PORT\n"
      "                   [--worker-id ID] [--tenant ID] [--cores N]\n"
      "                   [--sim-ci RESOURCE] [--clock-scale S]\n"
      "                   [--batch N] [--max-in-flight N]\n"
      "                   [--drain-timeout S] [--profile OUT.csv]\n"
      "       executes tasks from the Pending queue of the entk_broker at\n"
      "       HOST:PORT (required). --cores N sets the worker's pilot\n"
      "       size (default 4); --sim-ci names the simulated CI profile\n"
      "       the pilot runs on (default local.localhost); --clock-scale\n"
      "       sets wall seconds per virtual second (default 1e-3).\n"
      "       --batch bounds one Pending fetch/submit (default 64);\n"
      "       --max-in-flight caps unfinished units held at once\n"
      "       (0 = 2 x cores, the default). --drain-timeout bounds the\n"
      "       graceful-shutdown wait for in-flight work (default 10).\n"
      "       --profile dumps this worker's profiler events as CSV on\n"
      "       exit, for cross-process trace stitching.\n"
      "       --tenant binds this worker inside tenant ID's namespace on\n"
      "       a shared daemon — it drains that tenant's queues only (must\n"
      "       match the ensemble's entk_run --tenant).\n"
      "       SIGINT/SIGTERM drain gracefully; unfinished deliveries\n"
      "       return to the queue for other workers.\n");
  return 2;
}

bool parse_long(const char* s, long* out) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_double(const char* s, double* out) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace entk;

  worker::WorkerDaemonConfig config;
  std::string profile_out;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") return usage();
    if (i + 1 >= argc) return usage();  // every flag takes a value
    const char* value = argv[i + 1];
    if (flag == "--broker") {
      config.endpoint = value;
    } else if (flag == "--worker-id") {
      config.worker_id = value;
    } else if (flag == "--tenant") {
      config.tenant = value;
    } else if (flag == "--cores") {
      long cores = 0;
      if (!parse_long(value, &cores) || cores <= 0) return usage();
      config.cores = static_cast<int>(cores);
    } else if (flag == "--sim-ci") {
      config.resource = value;
    } else if (flag == "--clock-scale") {
      double scale = 0.0;
      if (!parse_double(value, &scale) || scale <= 0.0) return usage();
      config.clock_scale = scale;
    } else if (flag == "--batch") {
      long batch = 0;
      if (!parse_long(value, &batch) || batch <= 0) return usage();
      config.batch = static_cast<std::size_t>(batch);
    } else if (flag == "--max-in-flight") {
      long cap = 0;
      if (!parse_long(value, &cap) || cap < 0) return usage();
      config.max_in_flight = static_cast<std::size_t>(cap);
    } else if (flag == "--drain-timeout") {
      double timeout = 0.0;
      if (!parse_double(value, &timeout) || timeout < 0.0) return usage();
      config.drain_timeout_s = timeout;
    } else if (flag == "--profile") {
      profile_out = value;
    } else {
      return usage();
    }
    ++i;
  }
  if (config.endpoint.empty()) return usage();

  try {
    worker::WorkerDaemon daemon(config);
    g_daemon = &daemon;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    daemon.start();
    // Parsed by spawning tests/scripts: keep the format stable and flush
    // before entering the main loop.
    std::printf("entk_worker: %s serving %s\n", daemon.worker_id().c_str(),
                config.endpoint.c_str());
    std::fflush(stdout);

    const int code = daemon.run();
    if (!profile_out.empty()) {
      daemon.profiler()->dump_csv(profile_out);
      std::printf("entk_worker: profile written to %s\n",
                  profile_out.c_str());
    }
    std::printf("entk_worker: %s exiting (%zu task(s) done)\n",
                daemon.worker_id().c_str(), daemon.runtime().tasks_done());
    g_daemon = nullptr;
    return code;
  } catch (const EnTKError& e) {
    std::fprintf(stderr, "entk_worker: %s\n", e.what());
    return 2;
  }
}
