#!/usr/bin/env python3
"""Validate an EnTK Chrome trace export against tools/chrome_trace.schema.json.

Usage: validate_trace.py <trace.json> [schema.json]

Uses the `jsonschema` package when available; otherwise falls back to a
structural check enforcing the same constraints (so CI does not need extra
packages). Exits non-zero on the first violation.
"""
import json
import os
import sys


def structural_check(doc):
    assert isinstance(doc, dict), "top level must be an object"
    assert doc.get("displayTimeUnit") == "ms", "displayTimeUnit must be 'ms'"
    events = doc.get("traceEvents")
    assert isinstance(events, list), "traceEvents must be an array"
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        assert isinstance(e, dict), f"{where} must be an object"
        for key in ("ph", "pid", "tid", "name"):
            assert key in e, f"{where} missing '{key}'"
        assert e["ph"] in ("M", "X"), f"{where} ph must be M or X"
        assert isinstance(e["pid"], int) and e["pid"] >= 0, f"{where} bad pid"
        assert isinstance(e["tid"], int) and e["tid"] >= 0, f"{where} bad tid"
        assert isinstance(e["name"], str) and e["name"], f"{where} bad name"
        if e["ph"] == "X":
            for key in ("ts", "dur"):
                assert key in e, f"{where} complete event missing '{key}'"
                assert isinstance(e[key], (int, float)) and e[key] >= 0, \
                    f"{where} bad {key}"
        else:
            assert isinstance(e.get("args"), dict), f"{where} metadata needs args"


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    trace_path = sys.argv[1]
    schema_path = sys.argv[2] if len(sys.argv) > 2 else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "chrome_trace.schema.json")
    with open(trace_path) as f:
        doc = json.load(f)
    try:
        import jsonschema
        with open(schema_path) as f:
            schema = json.load(f)
        jsonschema.validate(doc, schema)
        mode = "jsonschema"
    except ImportError:
        structural_check(doc)
        mode = "structural fallback"
    n_x = sum(1 for e in doc["traceEvents"] if e["ph"] == "X")
    n_m = len(doc["traceEvents"]) - n_x
    print(f"validate_trace: OK ({mode}): {n_x} spans, {n_m} metadata records")
    return 0


if __name__ == "__main__":
    sys.exit(main())
