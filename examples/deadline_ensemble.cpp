// Deadline ensemble example: priority shedding under failures + node loss.
//
// A mixed-priority ensemble (12 "high" must-complete members, 40 "low"
// opportunistic members) runs against a 100-virtual-second deadline while
// the simulated platform misbehaves:
//   - sim::failure injects random task failures (retried automatically),
//   - an ensemble rule simulates a node outage 10 s in by shrinking the
//     pilot two nodes (elastic resize; in-flight work drains, nothing is
//     killed).
// A guard rule watches progress: if the high-priority group is not done by
// t = 25 s, it sheds the entire low-priority group (cancel_group) so the
// remaining capacity goes to what matters. The run meets the deadline by
// giving up work, which is exactly the point.
//
// Build & run:  ./build/examples/deadline_ensemble
#include <cstdio>
#include <memory>
#include <string>

#include "src/core/app_manager.hpp"
#include "src/ensemble/controller.hpp"

int main() {
  using namespace entk;

  constexpr int kHigh = 12;
  constexpr int kLow = 40;
  constexpr double kDeadlineS = 100.0;

  auto pipeline = std::make_shared<Pipeline>("deadline-run");
  auto work = std::make_shared<Stage>("work");
  // Low-priority members are added first so they soak up the initial
  // placement wave — the interesting case is high-priority work queued
  // behind opportunistic work when the platform degrades.
  for (int i = 0; i < kLow; ++i) {
    work->add_task(ensemble::make_task(
        "low-" + std::to_string(i), "low",
        [](json::Value& values) {
          values["priority"] = 0;
          return 0;
        },
        /*duration_s=*/20.0));
  }
  for (int i = 0; i < kHigh; ++i) {
    work->add_task(ensemble::make_task(
        "high-" + std::to_string(i), "high",
        [](json::Value& values) {
          values["priority"] = 1;
          return 0;
        },
        /*duration_s=*/20.0));
  }
  pipeline->add_stage(work);

  auto controller = ensemble::Controller::create(
      {.journal_path = "deadline_ensemble.journal.jsonl"});

  // 10 s in, the platform loses two nodes (simulated outage expressed as
  // an elastic shrink: retiring nodes drain their in-flight units).
  controller->add_rule({
      .name = "node-outage",
      .when = ensemble::trigger::after(10.0),
      .then = ensemble::action::resize_pilot(-2, "simulated node outage"),
      .max_fires = 1,
  });

  // Progress guard: past t = 25 s with high-priority members still
  // outstanding, shed every live low-priority task.
  controller->add_rule({
      .name = "shed-low-priority",
      .when =
          [](const ensemble::TriggerContext& ctx) {
            return ctx.now_s >= 25.0 &&
                   ctx.results.done_count("high") < kHigh;
          },
      .then =
          [](ensemble::Ops& ops) {
            const std::size_t shed = ops.cancel_group("low");
            ops.set_param("low_tasks_shed", static_cast<std::int64_t>(shed));
          },
      .max_fires = 1,
  });

  // Timestamp the moment the high-priority group completes.
  controller->add_rule({
      .name = "high-group-done",
      .when = ensemble::trigger::group_done_at_least("high", kHigh),
      .then =
          [](ensemble::Ops& ops) {
            ops.set_param("high_done_at_s", ops.now_s());
          },
      .max_fires = 1,
  });

  AppManagerConfig config;
  config.resource.resource = "local.localhost";
  config.resource.nodes = 4;  // 4 nodes x 8 cores
  config.clock_scale = 1e-3;
  config.resource.rts_teardown_base_s = 0.1;
  config.task_retry_limit = 3;
  config.resource.failure.base_probability = 0.08;  // flaky platform
  config.resource.failure.seed = 7;
  controller->attach(config);

  AppManager appman(config);
  appman.add_pipelines({pipeline});
  appman.run();

  const json::Value params = controller->params();
  ensemble::ResultView& results = controller->results();
  const double high_done_at = params.get_double("high_done_at_s", -1.0);
  const bool met = high_done_at >= 0.0 && high_done_at <= kDeadlineS;

  std::printf("deadline_ensemble: deadline %.0f virtual s\n", kDeadlineS);
  std::printf("  high priority: %zu done, %zu failed (of %d)\n",
              results.done_count("high"), results.failed_count("high"),
              kHigh);
  std::printf("  low priority:  %zu done, %zu canceled (of %d)\n",
              results.done_count("low"), results.canceled_count("low"),
              kLow);
  std::printf("  low tasks shed by guard rule: %lld\n",
              static_cast<long long>(params.get_int("low_tasks_shed", 0)));
  std::printf("  high-priority group completed at t = %.1f s\n",
              high_done_at);
  std::printf("  %zu controller decisions journaled to "
              "deadline_ensemble.journal.jsonl\n",
              controller->decision_count());
  std::printf("\nDeadline %s.\n", met ? "met" : "MISSED");
  return met ? 0 : 1;
}
