// Quickstart: describe a PST application and run it.
//
// The application mirrors the paper's introductory pattern (Fig 1): a set
// of pipelines, each a sequence of stages, each stage a set of concurrent
// tasks. Here two pipelines run concurrently on a simulated local
// resource; one carries a "simulation" stage followed by an "analysis"
// stage whose task is a real C++ callable.
//
// Build & run:  ./build/examples/quickstart
#include <atomic>
#include <cstdio>

#include "src/core/app_manager.hpp"

int main() {
  using namespace entk;

  // 1. Describe the application.
  std::atomic<long> analyzed{0};
  std::vector<PipelinePtr> pipelines;
  for (int p = 0; p < 2; ++p) {
    auto pipeline = std::make_shared<Pipeline>("pipeline-" + std::to_string(p));

    auto simulate = std::make_shared<Stage>("simulate");
    for (int t = 0; t < 4; ++t) {
      auto task = std::make_shared<Task>("sim-" + std::to_string(t));
      task->executable = "/bin/sleep";      // modeled executable...
      task->duration_s = 60.0;              // ...running 60 virtual seconds
      task->cpu_reqs.processes = 1;
      simulate->add_task(task);
    }
    pipeline->add_stage(simulate);

    auto analyze = std::make_shared<Stage>("analyze");
    auto task = std::make_shared<Task>("analysis");
    task->function = [&analyzed] {          // real in-process work
      long sum = 0;
      for (long i = 0; i < 1000000; ++i) sum += i % 7;
      analyzed += sum;
      return 0;
    };
    task->duration_s = 10.0;
    analyze->add_task(task);
    pipeline->add_stage(analyze);

    pipelines.push_back(std::move(pipeline));
  }

  // 2. Describe the resource and instantiate the AppManager.
  AppManagerConfig config;
  config.resource.resource = "local.localhost";
  config.resource.cpus = 8;
  config.resource.walltime_s = 3600;
  config.clock_scale = 1e-3;  // 1 virtual second costs 1 ms of wall time

  AppManager appman(config);
  appman.add_pipelines(std::move(pipelines));

  // 3. Run to completion.
  appman.run();

  // 4. Inspect the outcome.
  const OverheadReport report = appman.overheads();
  std::printf("quickstart: %zu tasks done, %zu failed\n", report.tasks_done,
              report.tasks_failed);
  std::printf("analysis payload computed: %ld\n", analyzed.load());
  std::printf("%s", report.to_table().c_str());
  for (const PipelinePtr& p : appman.pipelines()) {
    std::printf("pipeline %-12s -> %s\n", p->name.c_str(),
                to_string(p->state()));
  }
  return report.tasks_failed == 0 ? 0 : 1;
}
