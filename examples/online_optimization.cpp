// Online optimization example: the generator/evaluator loop.
//
// A 1-D parameter sweep that steers itself (libEnsemble-style): an
// ensemble::Generator proposes a batch of sample points, the tasks
// evaluate the misfit function and publish (x, misfit) into the
// completion-event stream, and the generator reads the aggregated results
// to bracket the minimum and propose the next, narrower batch. When the
// best misfit clears the target the generator returns an empty batch and
// the controller finishes the pipeline — the number of stages is decided
// by the data, not declared up front.
//
// A stat_below rule rides along to timestamp the moment the target was
// first reached, demonstrating threshold triggers on the streaming stats.
//
// Build & run:  ./build/examples/online_optimization
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>

#include "src/core/app_manager.hpp"
#include "src/ensemble/controller.hpp"

namespace {

// Smooth 1-D objective with a unique minimum at x* = 2.44.
double misfit_of(double x) {
  const double d = x - 2.44;
  return d * d + 0.1 * (1.0 - std::cos(3.0 * d));
}

struct SearchState {
  double lo = 0.0;
  double hi = 8.0;
  int round = 0;
};

}  // namespace

int main() {
  using namespace entk;

  constexpr int kBatch = 5;
  constexpr int kMaxRounds = 12;
  constexpr double kTarget = 1e-6;

  auto controller = ensemble::Controller::create(
      {.journal_path = "online_optimization.journal.jsonl"});

  // Timestamp the first time the running minimum clears 1e-3 (threshold
  // trigger on the streaming stats — fires once, then stays quiet).
  controller->add_rule({
      .name = "misfit-below-1e-3",
      .when = ensemble::trigger::stat_below("opt", "misfit",
                                            ensemble::Stat::Min, 1e-3),
      .then =
          [](ensemble::Ops& ops) {
            ops.set_param("misfit_below_1e-3_at_s", ops.now_s());
          },
      .max_fires = 1,
  });

  // Generator: evaluate kBatch points across the bracket, then shrink the
  // bracket around the best point seen so far. Empty batch = converged.
  auto state = std::make_shared<SearchState>();
  auto generator = ensemble::make_generator(
      [state](ensemble::ResultView& results,
              ensemble::Ops& ops) -> std::vector<TaskPtr> {
        if (state->round > 0) {
          // Re-center on the best sample so far and narrow the bracket.
          double best_x = 0.0;
          double best_m = std::numeric_limits<double>::infinity();
          for (const ensemble::Event& ev : results.completed("opt")) {
            const double m = ev.values().get_double("misfit", 1e300);
            if (m < best_m) {
              best_m = m;
              best_x = ev.values().get_double("x", 0.0);
            }
          }
          ops.set_param("best_x", best_x);
          ops.set_param("best_misfit", best_m);
          if (best_m < kTarget || state->round >= kMaxRounds) {
            return {};  // converged: the controller finishes the pipeline
          }
          const double width = 0.4 * (state->hi - state->lo);
          state->lo = best_x - width / 2.0;
          state->hi = best_x + width / 2.0;
        }

        std::vector<TaskPtr> batch;
        for (int i = 0; i < kBatch; ++i) {
          const double x =
              state->lo + (state->hi - state->lo) * i / (kBatch - 1);
          batch.push_back(ensemble::make_task(
              "opt-r" + std::to_string(state->round) + "-" +
                  std::to_string(i),
              "opt",
              [x](json::Value& values) {
                values["x"] = x;
                values["misfit"] = misfit_of(x);
                return 0;
              },
              /*duration_s=*/5.0));
        }
        ++state->round;
        return batch;
      });

  auto pipeline = std::make_shared<Pipeline>("online-optimization");
  controller->run_generator(pipeline, generator, "opt");

  AppManagerConfig config;
  config.resource.resource = "local.localhost";
  config.resource.cpus = 8;
  config.clock_scale = 1e-3;
  config.resource.rts_teardown_base_s = 0.1;
  controller->attach(config);

  AppManager appman(config);
  appman.add_pipelines({pipeline});
  appman.run();

  const json::Value params = controller->params();
  ensemble::ResultView& results = controller->results();
  std::printf("online_optimization: %zu evaluations over %zu stages\n",
              results.done_count("opt"), pipeline->stage_count());
  std::printf("  best x      = %.6f (true minimum 2.440000)\n",
              params.get_double("best_x", 0.0));
  std::printf("  best misfit = %.3e (target %.0e)\n",
              params.get_double("best_misfit", 1e300), kTarget);
  std::printf("  misfit < 1e-3 first reached at t = %.1f virtual s\n",
              params.get_double("misfit_below_1e-3_at_s", -1.0));
  std::printf("  mean misfit of all samples = %.4f\n",
              results.stat("opt", "misfit", ensemble::Stat::Mean, 0.0));
  std::printf("  %zu controller decisions journaled to "
              "online_optimization.journal.jsonl\n",
              controller->decision_count());

  const bool converged = params.get_double("best_misfit", 1e300) < kTarget;
  std::printf("\n%s\n", converged ? "Converged." : "Did not converge.");
  return converged ? 0 : 1;
}
