// Analog-ensemble forecasting example (paper §III-B, Fig 5).
//
// Runs the Adaptive Unstructured Analog workflow under EnTK: the pipeline
// starts with initialization and preprocessing stages and then *extends
// itself at runtime* — an ensemble::Controller rule consumes each
// aggregate stage's completion event and appends the next
// compute/aggregate pair until the point budget is reached (the number of
// iterations is unknown before execution, exactly the situation EnTK's
// adaptivity support targets). A random-selection baseline runs with the
// same budget for comparison.
//
// Build & run:  ./build/examples/analog_forecast [budget]
#include <cstdio>
#include <cstdlib>

#include "src/anen/aua.hpp"
#include "src/common/image.hpp"
#include "src/core/app_manager.hpp"

namespace {

entk::anen::AuaResult run_under_entk(const entk::anen::AuaSpec& spec,
                                     bool adaptive) {
  using namespace entk;
  auto runner = std::make_shared<anen::AuaRunner>(spec);

  AppManagerConfig config;
  config.resource.resource = "local.localhost";
  config.resource.cpus = 16;
  config.resource.agent.env_setup_s = 0.2;
  config.resource.agent.dispatch_rate_per_s = 200;
  config.resource.rts_teardown_base_s = 0.1;
  config.clock_scale = 1e-3;

  auto controller = ensemble::Controller::create();
  auto pipeline = anen::build_aua_pipeline(runner, adaptive, controller);
  controller->attach(config);

  AppManager appman(config);
  appman.add_pipelines({pipeline});
  appman.run();
  return runner->result();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace entk::anen;

  AuaSpec spec;
  spec.domain.width = 128;
  spec.domain.height = 128;
  spec.domain.history_days = 90;
  spec.domain.variables = 5;
  spec.initial_points = 150;
  spec.points_per_iteration = 150;
  spec.budget = argc > 1 ? std::atoi(argv[1]) : 900;
  spec.subregions = 6;

  std::printf("analog_forecast: %dx%d domain, %d-day archive, budget %d\n",
              spec.domain.width, spec.domain.height, spec.domain.history_days,
              spec.budget);

  const AuaResult adaptive = run_under_entk(spec, /*adaptive=*/true);
  const AuaResult random = run_under_entk(spec, /*adaptive=*/false);

  std::printf("\n%-10s %-6s %-10s %-10s\n", "method", "iters", "RMSE", "MAE");
  std::printf("%-10s %-6d %-10.4f %-10.4f\n", "adaptive", adaptive.iterations,
              adaptive.final_rmse, adaptive.final_mae);
  std::printf("%-10s %-6d %-10.4f %-10.4f\n", "random", random.iterations,
              random.final_rmse, random.final_mae);

  std::printf("\nadaptive error history:");
  for (double e : adaptive.rmse_history) std::printf(" %.4f", e);
  std::printf("\nrandom   error history:");
  for (double e : random.rmse_history) std::printf(" %.4f", e);
  std::printf("\n");

  const std::vector<double> truth =
      truth_field(spec.domain, spec.domain.history_days);
  entk::write_pgm("anen_truth.pgm", truth, spec.domain.width,
                  spec.domain.height);
  entk::write_pgm("anen_adaptive.pgm", adaptive.final_field,
                  spec.domain.width, spec.domain.height);
  entk::write_pgm("anen_random.pgm", random.final_field, spec.domain.width,
                  spec.domain.height);
  std::printf("wrote anen_truth.pgm, anen_adaptive.pgm, anen_random.pgm\n");

  const bool aua_wins = adaptive.final_rmse < random.final_rmse;
  std::printf("\nAUA %s the random baseline at equal budget.\n",
              aua_wins ? "beats" : "does not beat");
  return 0;
}
