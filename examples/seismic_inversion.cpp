// Seismic inversion example (paper §III-A, Fig 4).
//
// Runs several iterations of adjoint tomography as EnTK applications: one
// pipeline per earthquake, with the four Fig-4 stages (forward simulation,
// data processing, adjoint-source creation, adjoint simulation) executed
// as real 2-D finite-difference computations, then kernel summation and a
// model update between iterations. The data misfit must decrease as the
// model converges toward the (known, synthetic) true earth.
//
// Build & run:  ./build/examples/seismic_inversion [iterations]
#include <cstdio>
#include <cstdlib>

#include "src/common/image.hpp"
#include "src/core/app_manager.hpp"
#include "src/seismic/campaign.hpp"

int main(int argc, char** argv) {
  using namespace entk;
  using namespace entk::seismic;

  InversionSpec spec;
  spec.earthquakes = 3;
  spec.receivers = 10;
  spec.model.nx = 80;
  spec.model.nz = 80;
  spec.solver.nt = 400;
  spec.iterations = argc > 1 ? std::atoi(argv[1]) : 4;

  std::printf("seismic_inversion: %d earthquakes, %dx%d model, %d iterations\n",
              spec.earthquakes, spec.model.nx, spec.model.nz, spec.iterations);

  auto state = make_inversion_state(spec);
  const Field2D initial_model = state->current_model;

  for (int iter = 0; iter < spec.iterations; ++iter) {
    AppManagerConfig config;
    config.resource.resource = "local.localhost";
    config.resource.cpus = 16;
    config.resource.agent.env_setup_s = 0.5;
    config.resource.agent.dispatch_rate_per_s = 100;
    config.resource.rts_teardown_base_s = 0.1;
    config.clock_scale = 1e-3;

    AppManager appman(config);
    appman.add_pipelines(build_inversion_iteration(spec, state));
    appman.run();

    if (appman.tasks_failed() > 0) {
      std::printf("iteration %d: %zu task(s) failed, aborting\n", iter,
                  appman.tasks_failed());
      return 1;
    }
    sum_kernels_and_update(spec, *state);
    std::printf("iteration %d: misfit %.6e  (%zu tasks)\n", iter,
                state->misfit_history.back(), appman.tasks_done());
  }

  // Convergence report.
  const double first = state->misfit_history.front();
  const double last = state->misfit_history.back();
  std::printf("misfit reduction: %.6e -> %.6e (%.1f%%)\n", first, last,
              100.0 * (first - last) / first);

  // How much closer is the model to the truth, in the anomaly region?
  double before = 0, after = 0;
  for (int ix = 0; ix < spec.model.nx; ++ix) {
    for (int iz = 0; iz < spec.model.nz; ++iz) {
      const double t = state->observed_model.at(ix, iz);
      before += std::abs(initial_model.at(ix, iz) - t);
      after += std::abs(state->current_model.at(ix, iz) - t);
    }
  }
  std::printf("model error vs truth: %.4e -> %.4e\n", before, after);

  // Emit the visual artifacts (viewable with any PGM/PPM viewer).
  auto to_vec = [&](const Field2D& f) {
    std::vector<double> out(f.size());
    for (int iz = 0; iz < spec.model.nz; ++iz) {
      for (int ix = 0; ix < spec.model.nx; ++ix) {
        out[static_cast<std::size_t>(iz) * spec.model.nx + ix] = f.at(ix, iz);
      }
    }
    return out;
  };
  write_pgm("seismic_true_model.pgm", to_vec(state->observed_model),
            spec.model.nx, spec.model.nz);
  write_pgm("seismic_final_model.pgm", to_vec(state->current_model),
            spec.model.nx, spec.model.nz);
  Field2D anomaly = state->current_model;
  anomaly.axpy(-1.0, initial_model);
  write_diverging_ppm("seismic_recovered_anomaly.ppm", to_vec(anomaly),
                      spec.model.nx, spec.model.nz);
  std::printf("wrote seismic_true_model.pgm, seismic_final_model.pgm, "
              "seismic_recovered_anomaly.ppm\n");
  return last < first ? 0 : 1;
}
