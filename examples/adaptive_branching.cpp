// Adaptive branching example (paper §II-B-1), expressed on the ensemble
// rule API.
//
// "Branching events can be specified as tasks where a decision is made
// about the runtime flow": a screening stage evaluates an ensemble of
// candidate parameters and publishes each score into the completion-event
// stream; an ensemble::Controller rule consumes those results and submits
// a refinement stage containing tasks ONLY for the candidates that scored
// above a threshold — the workflow's shape is decided by the data, at
// runtime, by a supervised component instead of an ad-hoc callback.
//
// Build & run:  ./build/examples/adaptive_branching
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/app_manager.hpp"
#include "src/ensemble/controller.hpp"

namespace {

struct Candidate {
  double parameter = 0.0;
  double score = 0.0;
  double refined = 0.0;
  bool promoted = false;
};

}  // namespace

int main() {
  using namespace entk;

  auto candidates = std::make_shared<std::vector<Candidate>>();
  auto mutex = std::make_shared<std::mutex>();
  for (int i = 0; i < 12; ++i) {
    candidates->push_back({.parameter = 0.25 * i});
  }

  auto pipeline = std::make_shared<Pipeline>("screen-then-refine");
  // The controller appends the refinement stage asynchronously, so the
  // pipeline idles held-open until a rule calls finish().
  pipeline->hold_open();

  // Stage 1: cheap screening of every candidate. Each task publishes its
  // score (and candidate index) into the completion event.
  auto screen = std::make_shared<Stage>("screen");
  for (std::size_t i = 0; i < candidates->size(); ++i) {
    screen->add_task(ensemble::make_task(
        "screen-" + std::to_string(i), "screen",
        [candidates, mutex, i](json::Value& values) {
          const double p = (*candidates)[i].parameter;
          const double score = std::sin(p) * std::exp(-0.1 * p);  // toy
          {
            std::lock_guard<std::mutex> lock(*mutex);
            (*candidates)[i].score = score;
          }
          values["index"] = static_cast<std::int64_t>(i);
          values["score"] = score;
          return 0;
        },
        /*duration_s=*/10.0));
  }
  pipeline->add_stage(screen);

  auto controller = ensemble::Controller::create();
  const std::string puid = pipeline->uid();

  // Branching decision: when the screen stage completes, promote the
  // candidates whose published score clears the threshold.
  controller->add_rule({
      .name = "promote-screened",
      .when = ensemble::trigger::stage_done("screen"),
      .then =
          [candidates, mutex, puid](ensemble::Ops& ops) {
            std::vector<TaskPtr> refine;
            for (const ensemble::Event& ev : ops.results().completed("screen")) {
              const double score = ev.values().get_double("score", 0.0);
              if (score <= 0.5) continue;  // the branch
              const auto i = static_cast<std::size_t>(
                  ev.values().get_int("index", 0));
              {
                std::lock_guard<std::mutex> lock(*mutex);
                (*candidates)[i].promoted = true;
              }
              refine.push_back(ensemble::make_task(
                  "refine-" + std::to_string(i), "refine",
                  [candidates, mutex, i](json::Value& values) {
                    double acc = 0.0;  // "expensive" refinement
                    const double param = (*candidates)[i].parameter;
                    for (int k = 1; k <= 200000; ++k) {
                      acc += std::sin(param * k * 1e-4) / k;
                    }
                    {
                      std::lock_guard<std::mutex> lock(*mutex);
                      (*candidates)[i].refined = acc;
                    }
                    values["refined"] = acc;
                    return 0;
                  },
                  /*duration_s=*/50.0));  // refinement is 5x screening cost
            }
            if (refine.empty()) {
              ops.finish(puid);  // nothing promoted: the run is over
            } else {
              ops.submit_tasks(puid, "refine", std::move(refine));
            }
          },
      .max_fires = 1,
  });

  // Once refinement finishes, release the pipeline so the run completes.
  controller->add_rule({
      .name = "done-after-refine",
      .when = ensemble::trigger::stage_done("refine"),
      .then = ensemble::action::finish(puid),
      .max_fires = 1,
  });

  AppManagerConfig config;
  config.resource.resource = "local.localhost";
  config.resource.cpus = 16;
  config.clock_scale = 1e-3;
  config.resource.rts_teardown_base_s = 0.1;
  controller->attach(config);

  AppManager appman(config);
  appman.add_pipelines({pipeline});
  appman.run();

  std::printf("%-6s %-10s %-10s %-10s %s\n", "cand", "param", "score",
              "refined", "promoted");
  int promoted = 0;
  for (std::size_t i = 0; i < candidates->size(); ++i) {
    const Candidate& c = (*candidates)[i];
    std::printf("%-6zu %-10.3f %-10.4f %-10.4f %s\n", i, c.parameter, c.score,
                c.refined, c.promoted ? "yes" : "-");
    if (c.promoted) ++promoted;
  }
  std::printf("\n%d of %zu candidates were promoted to refinement;\n"
              "the pipeline grew from 1 stage to %zu at runtime\n"
              "(%zu controller decisions journaled).\n",
              promoted, candidates->size(), pipeline->stage_count(),
              controller->decision_count());
  return 0;
}
