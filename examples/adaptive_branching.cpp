// Adaptive branching example (paper §II-B-1).
//
// "Branching events can be specified as tasks where a decision is made
// about the runtime flow": here a screening stage evaluates an ensemble of
// candidate parameters, and its post-exec hook appends a refinement stage
// containing tasks ONLY for the candidates that scored above a threshold —
// the workflow's shape is decided by the data, at runtime.
//
// Build & run:  ./build/examples/adaptive_branching
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/app_manager.hpp"

namespace {

struct Candidate {
  double parameter = 0.0;
  double score = 0.0;
  double refined = 0.0;
  bool promoted = false;
};

}  // namespace

int main() {
  using namespace entk;

  auto candidates = std::make_shared<std::vector<Candidate>>();
  auto mutex = std::make_shared<std::mutex>();
  for (int i = 0; i < 12; ++i) {
    candidates->push_back({.parameter = 0.25 * i});
  }

  auto pipeline = std::make_shared<Pipeline>("screen-then-refine");

  // Stage 1: cheap screening of every candidate.
  auto screen = std::make_shared<Stage>("screen");
  for (std::size_t i = 0; i < candidates->size(); ++i) {
    auto task = std::make_shared<Task>("screen-" + std::to_string(i));
    task->duration_s = 10.0;
    task->function = [candidates, mutex, i] {
      const double p = (*candidates)[i].parameter;
      const double score = std::sin(p) * std::exp(-0.1 * p);  // toy objective
      std::lock_guard<std::mutex> lock(*mutex);
      (*candidates)[i].score = score;
      return 0;
    };
    screen->add_task(task);
  }

  // Branching decision: refine only the promising candidates.
  std::weak_ptr<Pipeline> weak_pipeline = pipeline;
  screen->post_exec = [candidates, mutex, weak_pipeline] {
    PipelinePtr p = weak_pipeline.lock();
    if (!p) return;
    auto refine = std::make_shared<Stage>("refine");
    std::lock_guard<std::mutex> lock(*mutex);
    for (std::size_t i = 0; i < candidates->size(); ++i) {
      if ((*candidates)[i].score <= 0.5) continue;  // the branch
      (*candidates)[i].promoted = true;
      auto task = std::make_shared<Task>("refine-" + std::to_string(i));
      task->duration_s = 50.0;  // refinement is 5x the screening cost
      task->function = [candidates, mutex, i] {
        double acc = 0.0;  // "expensive" refinement of the objective
        const double param = (*candidates)[i].parameter;
        for (int k = 1; k <= 200000; ++k) {
          acc += std::sin(param * k * 1e-4) / k;
        }
        std::lock_guard<std::mutex> inner(*mutex);
        (*candidates)[i].refined = acc;
        return 0;
      };
      refine->add_task(task);
    }
    if (refine->task_count() > 0) p->add_stage(refine);
  };
  pipeline->add_stage(screen);

  AppManagerConfig config;
  config.resource.resource = "local.localhost";
  config.resource.cpus = 16;
  config.clock_scale = 1e-3;
  config.resource.rts_teardown_base_s = 0.1;

  AppManager appman(config);
  appman.add_pipelines({pipeline});
  appman.run();

  std::printf("%-6s %-10s %-10s %-10s %s\n", "cand", "param", "score",
              "refined", "promoted");
  int promoted = 0;
  for (std::size_t i = 0; i < candidates->size(); ++i) {
    const Candidate& c = (*candidates)[i];
    std::printf("%-6zu %-10.3f %-10.4f %-10.4f %s\n", i, c.parameter, c.score,
                c.refined, c.promoted ? "yes" : "-");
    if (c.promoted) ++promoted;
  }
  std::printf("\n%d of %zu candidates were promoted to refinement;\n"
              "the pipeline grew from 1 stage to %zu at runtime.\n",
              promoted, candidates->size(), pipeline->stage_count());
  return 0;
}
