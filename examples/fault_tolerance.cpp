// Fault-tolerance example (paper §II-B-4).
//
// Demonstrates both recovery paths of the failure model:
//   1. task-level: flaky tasks fail and are automatically resubmitted
//      (without restarting completed tasks) until they succeed;
//   2. RTS-level: the runtime system is hard-killed mid-run; EnTK's
//      heartbeat notices, tears it down, boots a fresh instance with new
//      pilot resources, and resubmits only the lost in-flight units;
//   3. component-level: an EnTK component (here the WFProcessor) crashes
//      mid-run; the AppManager's supervisor restarts it re-attached to the
//      same queues and state store, and the run completes with no state
//      lost.
//
// Build & run:  ./build/examples/fault_tolerance
#include <atomic>
#include <cstdio>
#include <thread>

#include "src/core/app_manager.hpp"

int main() {
  using namespace entk;

  // ---- Part 1: task-level resubmission --------------------------------
  {
    AppManagerConfig config;
    config.resource.resource = "local.localhost";
    config.resource.cpus = 8;
    config.task_retry_limit = 5;
    config.clock_scale = 1e-3;
    config.resource.rts_teardown_base_s = 0.1;

    AppManager appman(config);
    auto pipeline = std::make_shared<Pipeline>("flaky-ensemble");
    auto stage = std::make_shared<Stage>("members");
    std::vector<std::shared_ptr<std::atomic<int>>> counters;
    for (int i = 0; i < 4; ++i) {
      auto counter = std::make_shared<std::atomic<int>>(0);
      counters.push_back(counter);
      auto task = std::make_shared<Task>("member-" + std::to_string(i));
      task->duration_s = 5.0;
      // Members 0 and 1 fail twice before succeeding.
      const int failures_needed = i < 2 ? 2 : 0;
      task->function = [counter, failures_needed] {
        return ++*counter <= failures_needed ? 1 : 0;
      };
      stage->add_task(task);
    }
    pipeline->add_stage(stage);
    appman.add_pipelines({pipeline});
    appman.run();
    std::printf(
        "task-level: %zu done, %zu resubmissions (attempts per task:",
        appman.tasks_done(), appman.resubmissions());
    for (const auto& c : counters) std::printf(" %d", c->load());
    std::printf(")\n");
  }

  // ---- Part 2: RTS failure and restart --------------------------------
  {
    AppManagerConfig config;
    config.resource.resource = "local.localhost";
    config.resource.cpus = 8;
    config.supervision.rts_restart_limit = 2;
    config.supervision.heartbeat_interval_s = 0.01;
    config.clock_scale = 1e-4;
    config.resource.rts_teardown_base_s = 0.1;

    AppManager appman(config);
    auto pipeline = std::make_shared<Pipeline>("long-ensemble");
    auto stage = std::make_shared<Stage>("members");
    for (int i = 0; i < 6; ++i) {
      auto task = std::make_shared<Task>("sim-" + std::to_string(i));
      task->executable = "simulator";
      task->duration_s = 1500.0;  // long enough for the kill to land
      stage->add_task(task);
    }
    pipeline->add_stage(stage);
    appman.add_pipelines({pipeline});

    std::thread chaos([&appman] {
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
      std::printf("rts-level: injecting RTS failure...\n");
      appman.inject_rts_failure();
    });
    appman.run();
    chaos.join();

    std::printf("rts-level: %zu done after %d RTS restart(s); pipeline %s\n",
                appman.tasks_done(), appman.rts_restarts(),
                to_string(appman.pipelines()[0]->state()));
  }

  // ---- Part 3: EnTK component crash and supervised restart ------------
  {
    AppManagerConfig config;
    config.resource.resource = "local.localhost";
    config.resource.cpus = 8;
    config.supervision.component_restart_limit = 2;
    config.supervision.heartbeat_interval_s = 0.01;
    config.clock_scale = 1e-4;
    config.resource.rts_teardown_base_s = 0.1;

    AppManager appman(config);
    auto pipeline = std::make_shared<Pipeline>("supervised-ensemble");
    auto stage = std::make_shared<Stage>("members");
    for (int i = 0; i < 6; ++i) {
      auto task = std::make_shared<Task>("sim-" + std::to_string(i));
      task->executable = "simulator";
      task->duration_s = 1500.0;
      stage->add_task(task);
    }
    pipeline->add_stage(stage);
    appman.add_pipelines({pipeline});

    std::thread chaos([&appman] {
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
      std::printf("component-level: crashing the WFProcessor...\n");
      appman.inject_component_fault("wfprocessor");
    });
    appman.run();
    chaos.join();

    std::printf(
        "component-level: %zu done after %d component restart(s); "
        "pipeline %s\n",
        appman.tasks_done(), appman.component_restarts(),
        to_string(appman.pipelines()[0]->state()));
  }
  return 0;
}
