// Experiment 3 (paper Fig 7c): overheads vs computing infrastructure.
//
// (1,1,16) sleep ensembles of 100 s on SuperMIC, Stampede, Comet and
// Titan. Expected shape: task execution ~100 s everywhere; EnTK setup and
// management overheads noticeably SMALLER on Titan, because there EnTK
// runs on an ORNL login node that is faster than the shared TACC VM used
// for the XSEDE machines (paper attributes ~0.05s vs ~0.1s setup and ~3s
// vs ~10s management to exactly this host difference).
#include <cstdio>

#include "bench/util.hpp"

int main(int argc, char** argv) {
  using namespace entk::bench;
  const int tasks = static_cast<int>(flag_int(argc, argv, "--tasks", 16));
  const double duration = flag_double(argc, argv, "--duration", 100.0);

  std::printf("Experiment 3 (Fig 7c): overheads vs computing infrastructure\n");
  std::printf("PST (1,1,%d), sleep %.0fs\n\n", tasks, duration);
  print_report_header("CI");

  for (const char* ci :
       {"xsede.supermic", "xsede.stampede", "xsede.comet", "ornl.titan"}) {
    EnsembleSpec spec;
    spec.tasks = tasks;
    spec.duration_s = duration;
    const entk::OverheadReport r =
        run_ensemble(experiment_config(ci, tasks), make_ensemble(spec));
    print_report_row(ci, r);
  }

  std::printf(
      "\nPaper shape: exec time ~%.0fs on all CIs; EnTK setup/management\n"
      "overheads ~3x smaller on Titan (faster EnTK host).\n",
      duration);
  return 0;
}
