// Table I of the paper: the parameters of Experiments 1-4 (Fig 7).
// This binary prints the parameter table exactly as the benches below it
// consume them, so the harness and the paper can be compared line by line.
#include <cstdio>

int main() {
  std::printf(
      "TABLE I: Parameters of the experiments plotted in Figure 7\n"
      "%-3s %-38s %-24s %-14s %-22s %-8s\n",
      "ID", "Computing Infrastructure (CI)", "Pipeline,Stage,Task",
      "Executable", "Task Duration", "Data");
  std::printf(
      "%-3s %-38s %-24s %-14s %-22s %-8s\n", "1", "SuperMIC", "(1,1,16)",
      "mdrun, sleep", "300s", "550KB");
  std::printf(
      "%-3s %-38s %-24s %-14s %-22s %-8s\n", "2", "SuperMIC", "(1,1,16)",
      "sleep", "1s, 10s, 100s, 1000s", "None");
  std::printf(
      "%-3s %-38s %-24s %-14s %-22s %-8s\n", "3",
      "SuperMIC, Stampede, Comet, Titan", "(1,1,16)", "sleep", "100s",
      "None");
  std::printf(
      "%-3s %-38s %-24s %-14s %-22s %-8s\n", "4", "SuperMIC",
      "(16,1,1), (1,16,1), (1,1,16)", "sleep", "100s", "None");
  std::printf(
      "\nBench targets: fig07a_executable, fig07b_duration, fig07c_ci, "
      "fig07d_structure\n");
  return 0;
}
