// Fig 6: performance of the EnTK prototype — task throughput and memory
// for multiple producers/consumers/queues.
//
// Reproduces the paper's prototype benchmark: P producers push serialized
// task objects into Q broker queues, C consumers pull them, deserialize,
// hand them to an empty RTS sink and ack. Configurations (1,1,1), (2,2,2),
// (4,4,4), (8,8,8). Each message costs one simulated broker round trip
// (--latency-us, default 200), standing in for the network RTT to the
// RabbitMQ server that dominated the Python prototype's per-message cost;
// that latency is what the added producers/consumers hide, so processing
// time scales ~1/P while memory rises with the number of live components.
//
// Each configuration runs in a forked child so per-configuration peak RSS
// is measurable. Default 100k tasks (the paper used 1e6; scale with
// --tasks 1000000 to match — runtimes scale linearly).
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/util.hpp"
#include "src/mq/broker.hpp"

namespace {

struct ConfigResult {
  double producer_s = 0.0;
  double consumer_s = 0.0;
  double total_s = 0.0;
  double base_mb = 0.0;
  double peak_mb = 0.0;
};

ConfigResult run_config(int n, long total_tasks, long latency_us) {
  using namespace entk;
  auto broker = std::make_shared<mq::Broker>("prototype");
  for (int q = 0; q < n; ++q) {
    broker->declare_queue("q" + std::to_string(q));
  }

  // Pre-serialize the task descriptions (the prototype instantiates its
  // task objects up front; this is the "baseline memory" of the paper).
  std::vector<std::string> bodies;
  bodies.reserve(static_cast<std::size_t>(total_tasks));
  for (long i = 0; i < total_tasks; ++i) {
    Task t;
    t.executable = "sleep";
    t.duration_s = 100;
    bodies.push_back(t.to_json().dump());
  }

  ConfigResult result;
  result.base_mb = bench::rss_mb();

  const auto rtt = std::chrono::microseconds(latency_us);
  std::atomic<long> consumed{0};
  const double t0 = wall_now_s();
  double producers_done = 0.0;

  std::vector<std::thread> threads;
  std::atomic<int> producers_left{n};
  for (int p = 0; p < n; ++p) {
    threads.emplace_back([&, p] {
      const std::string queue = "q" + std::to_string(p % n);
      const long lo = total_tasks * p / n;
      const long hi = total_tasks * (p + 1) / n;
      for (long i = lo; i < hi; ++i) {
        std::this_thread::sleep_for(rtt);  // broker round trip
        mq::Message m;
        m.set_body(bodies[static_cast<std::size_t>(i)]);
        broker->publish(queue, std::move(m));
      }
      if (--producers_left == 0) producers_done = wall_now_s() - t0;
    });
  }
  for (int c = 0; c < n; ++c) {
    threads.emplace_back([&, c] {
      const std::string queue = "q" + std::to_string(c % n);
      while (consumed.load() < total_tasks) {
        auto d = broker->get(queue, 0.001);
        if (!d) continue;
        std::this_thread::sleep_for(rtt);  // broker round trip
        // Deserialize and hand to the empty RTS module.
        try {
          (void)entk::json::parse(d->message.body());
        } catch (const entk::json::ParseError&) {
        }
        broker->ack(queue, d->delivery_tag);
        ++consumed;
      }
    });
  }
  for (auto& t : threads) t.join();
  result.total_s = wall_now_s() - t0;
  result.producer_s = producers_done;
  result.consumer_s = result.total_s;
  result.peak_mb = bench::peak_rss_mb();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace entk::bench;
  const long tasks = flag_int(argc, argv, "--tasks", 100000);
  const long latency_us = flag_int(argc, argv, "--latency-us", 200);

  std::printf(
      "Fig 6: EnTK prototype — %ld tasks through P producers, C consumers,\n"
      "Q queues; simulated broker round trip %ld us/message\n\n",
      tasks, latency_us);
  std::printf("%-14s %12s %12s %12s %12s %12s\n", "(P,C,Q)", "producers(s)",
              "consumers(s)", "total(s)", "base RSS(MB)", "peak RSS(MB)");

  for (const int n : {1, 2, 4, 8}) {
    int pipefd[2];
    if (pipe(pipefd) != 0) return 1;
    const pid_t pid = fork();
    if (pid == 0) {
      close(pipefd[0]);
      const ConfigResult r = run_config(n, tasks, latency_us);
      char buf[256];
      const int len =
          std::snprintf(buf, sizeof(buf), "%f %f %f %f %f", r.producer_s,
                        r.consumer_s, r.total_s, r.base_mb, r.peak_mb);
      ssize_t ignored = write(pipefd[1], buf, static_cast<std::size_t>(len));
      (void)ignored;
      close(pipefd[1]);
      _exit(0);
    }
    close(pipefd[1]);
    char buf[256] = {0};
    ssize_t got = read(pipefd[0], buf, sizeof(buf) - 1);
    (void)got;
    close(pipefd[0]);
    int status = 0;
    waitpid(pid, &status, 0);
    ConfigResult r;
    std::sscanf(buf, "%lf %lf %lf %lf %lf", &r.producer_s, &r.consumer_s,
                &r.total_s, &r.base_mb, &r.peak_mb);
    char label[24];
    std::snprintf(label, sizeof(label), "(%d,%d,%d)", n, n, n);
    std::printf("%-14s %12.2f %12.2f %12.2f %12.1f %12.1f\n", label,
                r.producer_s, r.consumer_s, r.total_s, r.base_mb, r.peak_mb);
  }

  std::printf(
      "\nPaper shape: processing time drops ~linearly with P=C=Q (1e6 tasks:\n"
      "~800s at 1 producer to 107s at 8); memory grows moderately with the\n"
      "number of components. Uneven P/C splits are less efficient.\n");
  return 0;
}
