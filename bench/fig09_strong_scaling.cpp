// Fig 9: strong scalability on Titan.
//
// 8,192 one-core Gromacs `mdrun` tasks (~600 s) executed on pilots of
// 1,024 / 2,048 / 4,096 cores — 8 / 4 / 2 generations respectively.
// Expected shape: Task Execution Time halves with every doubling of cores
// (linear strong scaling); every overhead and the staging time stay
// constant across pilot sizes, because both EnTK and RTS costs depend on
// the number of managed tasks, not on the size of the pilot.
#include <cstdio>

#include "bench/util.hpp"
#include "src/analytics/analysis.hpp"

int main(int argc, char** argv) {
  using namespace entk::bench;
  const long tasks = flag_int(argc, argv, "--tasks", 8192);
  const double duration = flag_double(argc, argv, "--duration", 600.0);

  std::printf("Fig 9: strong scalability on Titan (%ld 1-core mdrun ~%.0fs\n"
              "tasks on 1,024 / 2,048 / 4,096 cores)\n\n",
              tasks, duration);
  print_report_header("cores");

  std::vector<double> utilizations;
  for (const int cores : {1024, 2048, 4096}) {
    EnsembleSpec spec;
    spec.tasks = static_cast<int>(tasks);
    spec.duration_s = duration;
    spec.executable = "mdrun";
    spec.mdrun_staging = true;
    entk::AppManager appman(experiment_config("ornl.titan", cores));
    appman.add_pipelines(make_ensemble(spec));
    appman.run();
    print_report_row(std::to_string(cores), appman.overheads());
    utilizations.push_back(
        entk::analytics::RunAnalysis::from_profiler(*appman.profiler())
            .core_utilization(cores));
  }
  std::printf("\ncore utilization: 1024 -> %.1f%%, 2048 -> %.1f%%, "
              "4096 -> %.1f%%\n",
              100 * utilizations[0], 100 * utilizations[1],
              100 * utilizations[2]);

  std::printf(
      "\nPaper shape: exec time ~ (tasks/cores) generations x %.0fs —\n"
      "halving per core doubling; overheads and staging flat across runs.\n",
      duration);
  return 0;
}
