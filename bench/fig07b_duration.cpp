// Experiment 2 (paper Fig 7b): overheads vs task duration.
//
// SuperMIC, (1,1,16), sleep tasks of 1 / 10 / 100 / 1000 s. Expected
// shape: all EnTK overheads constant across durations; short tasks show
// inflated Task Execution Time (the RTS charges per-task environment
// setup, so 1 s tasks run for ~5 s — paper §IV-A-2), while 10 s and
// longer tasks run in about their nominal duration.
#include <cstdio>

#include "bench/util.hpp"

int main(int argc, char** argv) {
  using namespace entk::bench;
  const int tasks = static_cast<int>(flag_int(argc, argv, "--tasks", 16));

  std::printf("Experiment 2 (Fig 7b): overheads vs task duration\n");
  std::printf("CI xsede.supermic, PST (1,1,%d), executable sleep\n\n", tasks);
  print_report_header("duration");

  for (const double duration : {1.0, 10.0, 100.0, 1000.0}) {
    EnsembleSpec spec;
    spec.tasks = tasks;
    spec.duration_s = duration;
    const entk::OverheadReport r = run_ensemble(
        experiment_config("xsede.supermic", tasks), make_ensemble(spec));
    char label[32];
    std::snprintf(label, sizeof(label), "%.0fs", duration);
    print_report_row(label, r);
  }

  std::printf(
      "\nPaper shape: overheads flat across durations; 1s tasks execute in\n"
      "~5s (per-task env setup), longer tasks in about nominal time.\n");
  return 0;
}
