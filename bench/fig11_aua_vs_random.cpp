// Fig 11: adaptive (AUA) vs random analog-location selection.
//
// Repeats the paper's §IV-C-2 experiment: both methods get the same
// location budget (paper: 1,800 of 262,972 pixels) and the same initial
// random locations; the prediction maps are interpolated from the
// unstructured grids and compared against the (known, synthetic) truth.
// The error distributions over the repetitions are reported as box plots
// — the paper's Fig 11(d) — plus coarse ASCII renderings of the truth and
// both prediction maps for one repetition (Fig 11 a-c).
//
// Defaults are sized for a laptop run (192x192 domain = 36,864 pixels,
// 12 repetitions); use --width/--height 512 --reps 30 for the full-size
// experiment.
#include <cstdio>

#include "bench/util.hpp"
#include "src/anen/aua.hpp"
#include "src/anen/stats.hpp"

namespace {

void print_ascii_map(const char* title, const std::vector<double>& field,
                     int width, int height) {
  // Downsample to a 44x22 character map.
  const char* shades = " .:-=+*#%@";
  std::printf("%s\n", title);
  double lo = field[0], hi = field[0];
  for (double v : field) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = hi > lo ? hi - lo : 1.0;
  const int cols = 44, rows = 22;
  for (int r = 0; r < rows; ++r) {
    std::putchar(' ');
    for (int c = 0; c < cols; ++c) {
      const int x = c * width / cols;
      const int y = r * height / rows;
      const double v = field[static_cast<std::size_t>(y) * width + x];
      const int shade =
          std::min(9, static_cast<int>((v - lo) / range * 9.999));
      std::putchar(shades[shade]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace entk::bench;
  using namespace entk::anen;

  AuaSpec base;
  base.domain.width = static_cast<int>(flag_int(argc, argv, "--width", 192));
  base.domain.height = static_cast<int>(flag_int(argc, argv, "--height", 192));
  base.domain.history_days =
      static_cast<int>(flag_int(argc, argv, "--history", 90));
  base.domain.variables = static_cast<int>(flag_int(argc, argv, "--vars", 5));
  base.budget = static_cast<int>(flag_int(argc, argv, "--budget", 1800));
  base.initial_points = base.budget / 9;
  base.points_per_iteration = base.budget / 9;
  const long reps = flag_int(argc, argv, "--reps", 12);

  std::printf(
      "Fig 11: AUA vs random location selection\n"
      "domain %dx%d (%d pixels), %d-day archive, %d variables,\n"
      "budget %d locations, %ld repetitions\n\n",
      base.domain.width, base.domain.height,
      base.domain.width * base.domain.height, base.domain.history_days,
      base.domain.variables, base.budget, reps);

  std::vector<double> adaptive_rmse, random_rmse;
  AuaResult sample_adaptive, sample_random;
  for (long rep = 0; rep < reps; ++rep) {
    AuaSpec spec = base;
    spec.seed = 1000 + static_cast<std::uint64_t>(rep);
    // Both methods start from the same initial random locations (same
    // seed), as in the paper.
    const AuaResult a = run_adaptive(spec);
    const AuaResult r = run_random(spec);
    adaptive_rmse.push_back(a.final_rmse);
    random_rmse.push_back(r.final_rmse);
    if (rep == 0) {
      sample_adaptive = a;
      sample_random = r;
    }
    std::printf("  rep %2ld: adaptive %.4f   random %.4f\n", rep,
                a.final_rmse, r.final_rmse);
  }

  std::printf("\nFig 11(d) — error distribution over %ld repetitions:\n",
              reps);
  std::printf("  adaptive: %s\n", to_string(box_stats(adaptive_rmse)).c_str());
  std::printf("  random:   %s\n", to_string(box_stats(random_rmse)).c_str());

  const std::vector<double> truth =
      truth_field(base.domain, base.domain.history_days);
  std::printf("\nFig 11(a-c) — one repetition, coarse rendering:\n");
  print_ascii_map("(a) truth", truth, base.domain.width, base.domain.height);
  print_ascii_map("(b) random selection", sample_random.final_field,
                  base.domain.width, base.domain.height);
  print_ascii_map("(c) AUA", sample_adaptive.final_field, base.domain.width,
                  base.domain.height);

  std::printf(
      "\nPaper shape: with the same budget, the AUA map resolves the sharp-\n"
      "gradient regions better and its error distribution sits below the\n"
      "random baseline's.\n");
  return 0;
}
