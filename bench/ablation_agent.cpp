// Design-choice ablations on the RTS agent (DESIGN.md §3, ablation row):
//   1. stager workers — the paper's RP ships a single sequential stager,
//      which is what makes Fig 8's staging time linear in task count; how
//      much of that time would parallel stagers buy back?
//   2. executor dispatch rate — the bounded spawn rate models the ORTE
//      bottleneck behind Fig 8's non-ideal task-execution scaling; how
//      does exec-time growth respond to faster dispatch?
// Both sweeps run the weak-scaling workload (1,024 1-core 600 s mdrun
// tasks, staging 3 links + 550 KB each) on the Titan model.
#include <cstdio>

#include "bench/util.hpp"

int main(int argc, char** argv) {
  using namespace entk::bench;
  const long tasks = flag_int(argc, argv, "--tasks", 1024);

  std::printf("Agent ablations (%ld 1-core mdrun 600s tasks on Titan)\n\n",
              tasks);

  std::printf(
      "1. staging workers (paper/RP default: 1, sequential); heavy-staging\n"
      "   variant: each task copies a 1 GB restart file, so the stager is\n"
      "   the bottleneck and the makespan shows the parallelism tradeoff\n");
  std::printf("%-10s %12s %16s %14s\n", "stagers", "staging(s)",
              "staging span(s)", "task exec(s)");
  for (const int stagers : {1, 2, 4, 8}) {
    EnsembleSpec spec;
    spec.tasks = static_cast<int>(tasks) / 2;
    spec.duration_s = 600.0;
    spec.executable = "mdrun";
    spec.staging_bytes = 1000ull * 1000 * 1000;  // 1 GB restart file
    entk::AppManagerConfig config =
        experiment_config("ornl.titan", static_cast<int>(tasks));
    config.resource.agent.stager_workers = stagers;
    const entk::OverheadReport r =
        run_ensemble(std::move(config), make_ensemble(spec));
    std::printf("%-10d %12.2f %16.2f %14.2f\n", stagers, r.staging_s,
                r.staging_span_s, r.task_exec_s);
  }

  std::printf("\n2. executor dispatch rate (paper/ORTE-like default: 25/s)\n");
  std::printf("%-12s %14s\n", "rate (1/s)", "task exec(s)");
  for (const double rate : {10.0, 25.0, 100.0, 1000.0}) {
    EnsembleSpec spec;
    spec.tasks = static_cast<int>(tasks);
    spec.duration_s = 600.0;
    spec.executable = "mdrun";
    spec.mdrun_staging = true;
    entk::AppManagerConfig config =
        experiment_config("ornl.titan", static_cast<int>(tasks));
    config.resource.agent.dispatch_rate_per_s = rate;
    const entk::OverheadReport r =
        run_ensemble(std::move(config), make_ensemble(spec));
    std::printf("%-12.0f %14.2f\n", rate, r.task_exec_s);
  }

  std::printf(
      "\nReading: parallel stagers shrink total staging ~linearly; raising\n"
      "the dispatch rate removes the execution-time growth — confirming the\n"
      "paper's attribution of both weak-scaling deviations.\n");
  return 0;
}
