// net_roundtrip: loopback throughput of the framed TCP broker transport.
//
// Spins up a net::BrokerServer on an ephemeral loopback port, connects a
// net::RemoteBroker, and pushes messages through a publish -> get -> ack
// cycle two ways:
//
//   unbatched:  one frame roundtrip per message per operation
//   batched:    publish_batch / get_batch / ack_batch, B messages per frame
//
// Over loopback the per-frame syscall + wakeup cost dominates small
// messages, so batching is where the wire transport earns its keep — the
// same amortization argument as the in-process bulk dispatch path, now
// applied to TCP roundtrips. The acceptance gate (--check) requires the
// batched cycle to move >= 3x the messages/s of the unbatched cycle.
//
// Flags: --messages N (default 2000), --batch B (default 64),
//        --payload-bytes N (default 256), --reps R (best-of, default 3),
//        --check (enforce the 3x gate), --json-out PATH (default
//        BENCH_net.json).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/util.hpp"
#include "src/common/profiler.hpp"
#include "src/json/json.hpp"
#include "src/mq/broker.hpp"
#include "src/net/broker_server.hpp"
#include "src/net/remote_broker.hpp"

namespace {

using namespace entk;

mq::Message make_message(const std::string& queue, int i,
                         const std::string& padding) {
  json::Value payload;
  payload["i"] = static_cast<std::int64_t>(i);
  payload["pad"] = padding;
  return mq::Message::json_body(queue, std::move(payload));
}

struct Sample {
  double msgs_per_s = 0.0;
  double elapsed_s = 0.0;
};

/// One full cycle: publish all messages, then drain them with get+ack.
Sample run_cycle(net::RemoteBroker& client, const std::string& queue,
                 int messages, int batch, const std::string& padding) {
  const auto t0 = std::chrono::steady_clock::now();
  if (batch <= 1) {
    for (int i = 0; i < messages; ++i) {
      client.publish(queue, make_message(queue, i, padding));
    }
    int drained = 0;
    while (drained < messages) {
      auto delivery = client.get(queue, 1.0);
      if (!delivery) throw MqError("bench get timed out");
      client.ack(queue, delivery->delivery_tag);
      ++drained;
    }
  } else {
    for (int i = 0; i < messages; i += batch) {
      std::vector<mq::Message> chunk;
      chunk.reserve(static_cast<std::size_t>(batch));
      for (int j = i; j < i + batch && j < messages; ++j) {
        chunk.push_back(make_message(queue, j, padding));
      }
      client.publish_batch(queue, std::move(chunk));
    }
    int drained = 0;
    while (drained < messages) {
      auto deliveries =
          client.get_batch(queue, static_cast<std::size_t>(batch), 1.0);
      if (deliveries.empty()) throw MqError("bench get_batch timed out");
      std::vector<std::uint64_t> tags;
      tags.reserve(deliveries.size());
      for (const auto& d : deliveries) tags.push_back(d.delivery_tag);
      client.ack_batch(queue, tags);
      drained += static_cast<int>(deliveries.size());
    }
  }
  Sample s;
  s.elapsed_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count();
  s.msgs_per_s = messages / s.elapsed_s;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const int messages =
      static_cast<int>(bench::flag_int(argc, argv, "--messages", 2000));
  const int batch =
      static_cast<int>(bench::flag_int(argc, argv, "--batch", 64));
  const int payload_bytes =
      static_cast<int>(bench::flag_int(argc, argv, "--payload-bytes", 256));
  const long reps = bench::flag_int(argc, argv, "--reps", 3);
  const bool check = bench::flag_present(argc, argv, "--check");
  std::string json_out = "BENCH_net.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json-out") json_out = argv[i + 1];
  }

  const std::string padding(static_cast<std::size_t>(payload_bytes), 'x');
  const std::string queue = "q.bench";

  auto broker = std::make_shared<mq::Broker>("bench_broker");
  broker->declare_queue(queue, {});
  net::BrokerServer server(broker, {}, std::make_shared<Profiler>());
  server.start();

  net::RemoteBrokerConfig client_cfg;
  client_cfg.endpoint = server.endpoint();
  net::RemoteBroker client(client_cfg);
  client.declare_queue(queue, {});

  std::printf("loopback broker at %s: %d messages x %d B payload, "
              "batch=%d, best of %ld\n",
              server.endpoint().c_str(), messages, payload_bytes, batch,
              reps);

  Sample unbatched, batched;
  for (long r = 0; r < reps; ++r) {  // best-of-R each side
    const Sample u = run_cycle(client, queue, messages, 1, padding);
    const Sample b = run_cycle(client, queue, messages, batch, padding);
    if (u.msgs_per_s > unbatched.msgs_per_s) unbatched = u;
    if (b.msgs_per_s > batched.msgs_per_s) batched = b;
  }
  const double speedup = batched.msgs_per_s / unbatched.msgs_per_s;

  std::printf("%14s %14s %14s %9s\n", "cycle", "msgs/s", "elapsed (s)",
              "speedup");
  std::printf("%14s %14.0f %14.3f %9s\n", "unbatched", unbatched.msgs_per_s,
              unbatched.elapsed_s, "1.00x");
  std::printf("%14s %14.0f %14.3f %8.2fx\n", "batched", batched.msgs_per_s,
              batched.elapsed_s, speedup);

  client.close();
  server.stop();
  broker->close();

  json::Value doc;
  doc["bench"] = "net_roundtrip";
  doc["endpoint"] = "loopback";
  doc["messages"] = messages;
  doc["payload_bytes"] = payload_bytes;
  doc["batch"] = batch;
  doc["reps"] = static_cast<std::int64_t>(reps);
  doc["unbatched_msgs_per_s"] = unbatched.msgs_per_s;
  doc["batched_msgs_per_s"] = batched.msgs_per_s;
  doc["speedup"] = speedup;
  std::ofstream out(json_out);
  out << doc.dump() << "\n";
  std::printf("results written to %s\n", json_out.c_str());

  if (check && speedup < 3.0) {
    std::fprintf(stderr,
                 "NET CHECK FAILED: expected batched >= 3x unbatched over "
                 "loopback, got %.2fx\n",
                 speedup);
    return 1;
  }
  return 0;
}
