// net_roundtrip: loopback throughput of the framed TCP broker transport.
//
// Spins up a net::BrokerServer on an ephemeral loopback port, connects
// net::RemoteBroker clients, and pushes messages through publish -> get ->
// ack cycles four ways:
//
//   unbatched:       one frame roundtrip per message per op (binary codec)
//   text batched:    publish_batch / get_batch / ack_batch with the JSON
//                    text codec forced (binary_codec=false) — the PR5-era
//                    wire format, kept as the in-run baseline
//   binary batched:  the same batched cycle over the negotiated typed-value
//                    codec; Message::body() is never rendered on this path,
//                    asserted via mq::body_render_count()
//   pipelined:       binary batched with a producer thread publishing while
//                    the main thread drains get+ack — publish frames queue
//                    behind the server's scatter-gather writer instead of
//                    serializing whole phases
//
// Over loopback the per-frame syscall + wakeup cost dominates small
// messages, so batching is where the wire transport earns its keep; the
// typed-value codec then removes the JSON render/parse from every hop, and
// pipelining overlaps the request and drain halves of the cycle. Two
// gates, enforced at the workload where each effect dominates:
//
//   --check        batched >= 3x unbatched (the PR5 gate, still enforced)
//                  — run at the small default payload, where per-frame
//                  roundtrip cost is the bottleneck;
//   --codec-check  best binary mode (batched or pipelined) >= 3x the
//                  text-batched baseline measured in the same run — run
//                  with a large structured payload (e.g. --payload-bytes
//                  8192), where the codec is the bottleneck.
//
// Both gates also require zero Message::body() renders across all binary
// phases (mq::body_render_count()).
//
// Flags: --messages N (default 2000), --batch B (default 64),
//        --payload-bytes N (default 256), --reps R (best-of, default 3),
//        --check / --codec-check (enforce the gates), --json-out PATH
//        (default BENCH_net.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/util.hpp"
#include "src/common/profiler.hpp"
#include "src/json/json.hpp"
#include "src/mq/broker.hpp"
#include "src/mq/message.hpp"
#include "src/net/broker_server.hpp"
#include "src/net/remote_broker.hpp"

namespace {

using namespace entk;

// A structured payload shaped like a task descriptor with telemetry: a few
// scalar fields plus a block of double samples (timestamps, durations)
// sized by --payload-bytes (8 wire bytes per element). Structured numeric
// content is where the codecs differ — JSON pays a double->text render and
// strtod parse on every hop, the typed-value codec moves the same numbers
// as fixed-width words.
mq::Message make_message(const std::string& queue, int i, int data_doubles) {
  json::Value payload;
  payload["i"] = static_cast<std::int64_t>(i);
  payload["uid"] = "task." + std::to_string(i);
  json::Array data;
  data.reserve(static_cast<std::size_t>(data_doubles));
  for (int k = 0; k < data_doubles; ++k) {
    data.push_back(1.5e9 + i + 0.001 * k);  // epoch-second timestamp shape
  }
  payload["data"] = std::move(data);
  return mq::Message::json_body(queue, std::move(payload));
}

// What every real consumer does first: read the descriptor. On the text
// codec this is the JSON parse; on the binary codec it is the one lazy
// TLV decode (payload() is an opaque call with memoizing side effects, so
// the access cannot be optimized out).
void consume(const mq::Delivery& d) {
  if (d.message.payload()->at("i").as_int() < 0) {
    throw MqError("bench: corrupt descriptor");
  }
}

struct Sample {
  double msgs_per_s = 0.0;
  double elapsed_s = 0.0;
};

/// One full cycle: publish all messages, then drain them with get+ack,
/// reading each delivered descriptor.
Sample run_cycle(net::RemoteBroker& client, const std::string& queue,
                 int messages, int batch, int data_doubles) {
  const auto t0 = std::chrono::steady_clock::now();
  if (batch <= 1) {
    for (int i = 0; i < messages; ++i) {
      client.publish(queue, make_message(queue, i, data_doubles));
    }
    int drained = 0;
    while (drained < messages) {
      auto delivery = client.get(queue, 1.0);
      if (!delivery) throw MqError("bench get timed out");
      consume(*delivery);
      client.ack(queue, delivery->delivery_tag);
      ++drained;
    }
  } else {
    for (int i = 0; i < messages; i += batch) {
      std::vector<mq::Message> chunk;
      chunk.reserve(static_cast<std::size_t>(batch));
      for (int j = i; j < i + batch && j < messages; ++j) {
        chunk.push_back(make_message(queue, j, data_doubles));
      }
      client.publish_batch(queue, std::move(chunk));
    }
    int drained = 0;
    while (drained < messages) {
      auto deliveries =
          client.get_batch(queue, static_cast<std::size_t>(batch), 1.0);
      if (deliveries.empty()) throw MqError("bench get_batch timed out");
      std::vector<std::uint64_t> tags;
      tags.reserve(deliveries.size());
      for (const auto& d : deliveries) {
        consume(d);
        tags.push_back(d.delivery_tag);
      }
      client.ack_batch(queue, tags);
      drained += static_cast<int>(deliveries.size());
    }
  }
  Sample s;
  s.elapsed_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count();
  s.msgs_per_s = messages / s.elapsed_s;
  return s;
}

/// Pipelined cycle: a producer thread publishes batches while this thread
/// drains get+ack concurrently through the same connection, so publish
/// frames ride the scatter-gather writer alongside delivery responses
/// instead of the two halves running as serial phases.
Sample run_pipelined(net::RemoteBroker& client, const std::string& queue,
                     int messages, int batch, int data_doubles) {
  const auto t0 = std::chrono::steady_clock::now();
  std::thread producer([&] {
    for (int i = 0; i < messages; i += batch) {
      std::vector<mq::Message> chunk;
      chunk.reserve(static_cast<std::size_t>(batch));
      for (int j = i; j < i + batch && j < messages; ++j) {
        chunk.push_back(make_message(queue, j, data_doubles));
      }
      client.publish_batch(queue, std::move(chunk));
    }
  });
  int drained = 0;
  int empty_polls = 0;
  while (drained < messages) {
    auto deliveries =
        client.get_batch(queue, static_cast<std::size_t>(batch), 1.0);
    if (deliveries.empty()) {
      if (++empty_polls > 30) throw MqError("bench pipelined drain stalled");
      continue;
    }
    empty_polls = 0;
    std::vector<std::uint64_t> tags;
    tags.reserve(deliveries.size());
    for (const auto& d : deliveries) {
      consume(d);
      tags.push_back(d.delivery_tag);
    }
    client.ack_batch(queue, tags);
    drained += static_cast<int>(deliveries.size());
  }
  producer.join();
  Sample s;
  s.elapsed_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count();
  s.msgs_per_s = messages / s.elapsed_s;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const int messages =
      static_cast<int>(bench::flag_int(argc, argv, "--messages", 2000));
  const int batch =
      static_cast<int>(bench::flag_int(argc, argv, "--batch", 64));
  const int payload_bytes =
      static_cast<int>(bench::flag_int(argc, argv, "--payload-bytes", 256));
  const long reps = bench::flag_int(argc, argv, "--reps", 3);
  const bool check = bench::flag_present(argc, argv, "--check");
  const bool codec_check = bench::flag_present(argc, argv, "--codec-check");
  std::string json_out = "BENCH_net.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json-out") json_out = argv[i + 1];
  }

  // 8 wire bytes per data element (TLV int64); the scalar fields are noise.
  const int data_doubles = payload_bytes / 8;
  const std::string queue = "q.bench";

  auto broker = std::make_shared<mq::Broker>("bench_broker");
  broker->declare_queue(queue, {});
  net::BrokerServer server(broker, {}, std::make_shared<Profiler>());
  server.start();

  // Two clients against the same server: the default one negotiates the
  // typed-value codec, the baseline one pins the PR5 text format.
  net::RemoteBrokerConfig client_cfg;
  client_cfg.endpoint = server.endpoint();
  net::RemoteBroker client(client_cfg);
  client.declare_queue(queue, {});

  net::RemoteBrokerConfig text_cfg = client_cfg;
  text_cfg.binary_codec = false;
  net::RemoteBroker text_client(text_cfg);

  std::printf("loopback broker at %s: %d messages x %d B payload, "
              "batch=%d, best of %ld (binary codec: %s)\n",
              server.endpoint().c_str(), messages, payload_bytes, batch, reps,
              client.negotiated_codec() == net::kCodecBinary ? "on" : "off");

  Sample unbatched, text_batched, batched, pipelined;
  std::uint64_t binary_renders = 0;
  for (long r = 0; r < reps; ++r) {  // best-of-R each mode, paired per rep
    const Sample t = run_cycle(text_client, queue, messages, batch, data_doubles);
    const std::uint64_t renders_before = mq::body_render_count();
    const Sample u = run_cycle(client, queue, messages, 1, data_doubles);
    const Sample b = run_cycle(client, queue, messages, batch, data_doubles);
    const Sample p = run_pipelined(client, queue, messages, batch, data_doubles);
    binary_renders += mq::body_render_count() - renders_before;
    if (t.msgs_per_s > text_batched.msgs_per_s) text_batched = t;
    if (u.msgs_per_s > unbatched.msgs_per_s) unbatched = u;
    if (b.msgs_per_s > batched.msgs_per_s) batched = b;
    if (p.msgs_per_s > pipelined.msgs_per_s) pipelined = p;
  }
  const double batch_speedup = batched.msgs_per_s / unbatched.msgs_per_s;
  const double codec_speedup = batched.msgs_per_s / text_batched.msgs_per_s;
  const double pipeline_speedup =
      pipelined.msgs_per_s / text_batched.msgs_per_s;
  // The new-transport gate compares the best binary mode against the
  // text-codec baseline measured in the same run (machine-independent).
  const double binary_speedup = std::max(codec_speedup, pipeline_speedup);

  std::printf("%16s %14s %14s %9s\n", "cycle", "msgs/s", "elapsed (s)",
              "vs text");
  std::printf("%16s %14.0f %14.3f %9s\n", "unbatched", unbatched.msgs_per_s,
              unbatched.elapsed_s, "-");
  std::printf("%16s %14.0f %14.3f %9s\n", "text batched",
              text_batched.msgs_per_s, text_batched.elapsed_s, "1.00x");
  std::printf("%16s %14.0f %14.3f %8.2fx\n", "binary batched",
              batched.msgs_per_s, batched.elapsed_s, codec_speedup);
  std::printf("%16s %14.0f %14.3f %8.2fx\n", "pipelined",
              pipelined.msgs_per_s, pipelined.elapsed_s, pipeline_speedup);
  std::printf("batched vs unbatched: %.2fx; body renders during binary "
              "phases: %llu\n",
              batch_speedup,
              static_cast<unsigned long long>(binary_renders));

  client.close();
  text_client.close();
  server.stop();
  broker->close();

  json::Value doc;
  doc["bench"] = "net_roundtrip";
  doc["endpoint"] = "loopback";
  doc["messages"] = messages;
  doc["payload_bytes"] = payload_bytes;
  doc["batch"] = batch;
  doc["reps"] = static_cast<std::int64_t>(reps);
  doc["unbatched_msgs_per_s"] = unbatched.msgs_per_s;
  doc["text_batched_msgs_per_s"] = text_batched.msgs_per_s;
  doc["batched_msgs_per_s"] = batched.msgs_per_s;
  doc["pipelined_msgs_per_s"] = pipelined.msgs_per_s;
  doc["speedup"] = batch_speedup;
  doc["codec_speedup"] = codec_speedup;
  doc["pipeline_speedup"] = pipeline_speedup;
  doc["binary_speedup"] = binary_speedup;
  doc["binary_body_renders"] = static_cast<std::int64_t>(binary_renders);
  std::ofstream out(json_out);
  out << doc.dump() << "\n";
  std::printf("results written to %s\n", json_out.c_str());

  bool failed = false;
  if (check && batch_speedup < 3.0) {
    std::fprintf(stderr,
                 "NET CHECK FAILED: expected batched >= 3x unbatched over "
                 "loopback, got %.2fx\n",
                 batch_speedup);
    failed = true;
  }
  if (codec_check && binary_speedup < 3.0) {
    std::fprintf(stderr,
                 "NET CHECK FAILED: expected binary batched/pipelined >= 3x "
                 "the text-batched baseline, got %.2fx\n",
                 binary_speedup);
    failed = true;
  }
  if ((check || codec_check) && binary_renders != 0) {
    std::fprintf(stderr,
                 "NET CHECK FAILED: %llu Message::body() renders on the "
                 "binary codec path (expected 0)\n",
                 static_cast<unsigned long long>(binary_renders));
    failed = true;
  }
  return failed ? 1 : 0;
}
