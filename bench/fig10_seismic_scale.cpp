// Fig 10: seismic forward simulations at scale on Titan.
//
// 32 earthquakes, each forward-simulated by a 384-node (6,144-core) task,
// executed with pilot widths allowing 2^0 .. 2^5 concurrent tasks — the
// paper's way of trading concurrency for walltime without re-entering
// Titan's queue. At 2^5 concurrent tasks (12,288 nodes) the shared
// filesystem overloads: 50% of tasks fail, and EnTK automatically
// resubmits them until the ensemble completes.
//
// Expected shape: Task Execution Time falls ~linearly with concurrency
// down to a single-generation minimum; zero failures up to 2^4; at 2^5 a
// surge of failures with total attempts well above the 32 tasks, and a
// completion time comparable to the 2^4 run despite the extra width.
#include <cstdio>

#include "bench/util.hpp"
#include "src/seismic/campaign.hpp"

int main(int argc, char** argv) {
  using namespace entk::bench;
  using entk::seismic::ForwardCampaignSpec;

  const long earthquakes = flag_int(argc, argv, "--earthquakes", 32);
  const int nodes_per_task =
      static_cast<int>(flag_int(argc, argv, "--nodes-per-task", 384));
  const int overload_threshold =
      static_cast<int>(flag_int(argc, argv, "--overload-threshold", 32));

  std::printf(
      "Fig 10: %ld forward simulations (384 nodes each) on Titan at\n"
      "concurrency 2^0..2^5; filesystem overload at %d concurrent tasks\n\n",
      earthquakes, overload_threshold);
  std::printf("%-22s %12s %12s %8s %14s %10s\n", "concurrency/nodes",
              "exec time(s)", "staging(s)", "done", "failed attempts",
              "attempts");

  for (int conc = 1; conc <= 32; conc *= 2) {
    ForwardCampaignSpec campaign;
    campaign.earthquakes = static_cast<int>(earthquakes);
    campaign.nodes_per_task = nodes_per_task;

    entk::AppManagerConfig config;
    config.resource.resource = "ornl.titan";
    config.resource.nodes = conc * nodes_per_task;
    config.resource.walltime_s = 48 * 3600;
    config.clock_scale = 1e-3;
    config.task_retry_limit = 100;  // resubmit until success (paper §IV-C-1)
    // Overload regime: while >= threshold tasks execute concurrently, the
    // shared filesystem is overloaded and tasks fail with p = 0.5; the
    // degradation is sticky until concurrency halves (the paper saw
    // failures persist through resubmission waves: 157 attempts for 32
    // tasks at 2^5).
    config.resource.failure.concurrency_threshold = overload_threshold;
    config.resource.failure.overload_probability = 0.5;
    config.resource.failure.sticky = true;
    config.resource.failure.recovery_threshold = overload_threshold / 2;
    config.resource.failure.seed = 1234;

    entk::AppManager appman(config);
    appman.add_pipelines({entk::seismic::build_forward_campaign(campaign)});
    appman.run();
    const entk::OverheadReport r = appman.overheads();

    char label[40];
    std::snprintf(label, sizeof(label), "2^%d = %d / %d",
                  conc == 1 ? 0 : (conc == 2 ? 1 : (conc == 4 ? 2 : (conc == 8 ? 3 : (conc == 16 ? 4 : 5)))),
                  conc, conc * nodes_per_task);
    // "failed attempts" = every execution that ended in failure, whether
    // or not the task eventually succeeded after resubmission.
    std::printf("%-22s %12.1f %12.1f %8zu %14zu %10zu\n", label,
                r.task_exec_s, r.staging_s, r.tasks_done,
                r.tasks_failed + r.resubmissions,
                r.tasks_done + r.tasks_failed + r.resubmissions);
  }

  std::printf(
      "\nPaper shape: exec time ~4000s at 2^0 falling linearly to ~180s at\n"
      "full concurrency; 0 failures through 2^4; at 2^5, ~50%% of executing\n"
      "tasks fail and EnTK resubmits until done (157 attempts for 32 tasks),\n"
      "landing near the 2^4 completion time.\n");
  return 0;
}
