#include "bench/util.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace entk::bench {

long flag_int(int argc, char** argv, const std::string& name, long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (name == argv[i]) return std::atol(argv[i + 1]);
  }
  return fallback;
}

double flag_double(int argc, char** argv, const std::string& name,
                   double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (name == argv[i]) return std::atof(argv[i + 1]);
  }
  return fallback;
}

bool flag_present(int argc, char** argv, const std::string& name) {
  for (int i = 1; i < argc; ++i) {
    if (name == argv[i]) return true;
  }
  return false;
}

std::vector<PipelinePtr> make_ensemble(const EnsembleSpec& spec) {
  std::vector<PipelinePtr> pipelines;
  for (int p = 0; p < spec.pipelines; ++p) {
    auto pipeline = std::make_shared<Pipeline>("p" + std::to_string(p));
    for (int s = 0; s < spec.stages; ++s) {
      auto stage = std::make_shared<Stage>("s" + std::to_string(s));
      for (int t = 0; t < spec.tasks; ++t) {
        auto task = std::make_shared<Task>("t" + std::to_string(t));
        task->executable = spec.executable;
        task->duration_s = spec.duration_s;
        task->cpu_reqs.processes = spec.cores_per_task;
        if (spec.staging_bytes > 0) {
          task->input_staging.push_back(saga::StagingDirective{
              "restart.bin", "sandbox/", saga::StagingAction::Copy,
              spec.staging_bytes});
        } else if (spec.mdrun_staging) {
          for (int l = 0; l < 3; ++l) {
            task->input_staging.push_back(saga::StagingDirective{
                "topol" + std::to_string(l), "sandbox/",
                saga::StagingAction::Link, 130});
          }
          task->input_staging.push_back(saga::StagingDirective{
              "conf.gro", "sandbox/", saga::StagingAction::Copy, 550000});
        }
        stage->add_task(task);
      }
      pipeline->add_stage(stage);
    }
    pipelines.push_back(std::move(pipeline));
  }
  return pipelines;
}

AppManagerConfig experiment_config(const std::string& ci, int cores) {
  AppManagerConfig config;
  config.resource.resource = ci;
  config.resource.cpus = cores;
  config.resource.walltime_s = 48 * 3600;
  config.clock_scale = 1e-3;
  return config;
}

OverheadReport run_ensemble(AppManagerConfig config,
                            std::vector<PipelinePtr> pipelines) {
  AppManager appman(std::move(config));
  appman.add_pipelines(std::move(pipelines));
  appman.run();
  return appman.overheads();
}

void print_report_header(const std::string& sweep_name) {
  std::printf("%-22s %10s %10s %10s %10s %10s %10s %12s\n", sweep_name.c_str(),
              "EnTK-setup", "EnTK-mgmt", "EnTK-tdown", "RTS-ovh", "RTS-tdown",
              "Staging", "TaskExec");
  std::printf("%-22s %10s %10s %10s %10s %10s %10s %12s\n", "", "(s)", "(s)",
              "(s)", "(s)", "(s)", "(s)", "(s)");
}

void print_report_row(const std::string& label, const OverheadReport& r) {
  std::printf("%-22s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f %12.3f\n",
              label.c_str(), r.entk_setup_s, r.entk_mgmt_s, r.entk_teardown_s,
              r.rts_overhead_s, r.rts_teardown_s, r.staging_s, r.task_exec_s);
}

namespace {
double status_value_mb(const char* key) {
  std::ifstream in("/proc/self/status");
  std::string line;
  const std::size_t keylen = std::strlen(key);
  while (std::getline(in, line)) {
    if (line.compare(0, keylen, key) == 0) {
      return std::atof(line.c_str() + keylen + 1) / 1024.0;  // kB -> MB
    }
  }
  return 0.0;
}
}  // namespace

double rss_mb() { return status_value_mb("VmRSS:"); }
double peak_rss_mb() { return status_value_mb("VmHWM:"); }

}  // namespace entk::bench
