// Experiment 4 (paper Fig 7d): overheads vs application structure.
//
// SuperMIC, 16 x 100 s sleep tasks arranged as (16 pipelines,1,1),
// (1,16 stages,1) and (1,1,16 tasks). Expected shape: overheads are
// structure-independent; Task Execution Time is ~100 s for the two
// concurrent arrangements and ~1600 s for (1,16,1), whose stages execute
// strictly sequentially.
#include <cstdio>

#include "bench/util.hpp"

int main(int argc, char** argv) {
  using namespace entk::bench;
  const int n = static_cast<int>(flag_int(argc, argv, "--tasks", 16));
  const double duration = flag_double(argc, argv, "--duration", 100.0);

  std::printf("Experiment 4 (Fig 7d): overheads vs application structure\n");
  std::printf("CI xsede.supermic, %d x sleep %.0fs\n\n", n, duration);
  print_report_header("structure (P,S,T)");

  const int shapes[3][3] = {{n, 1, 1}, {1, n, 1}, {1, 1, n}};
  for (const auto& shape : shapes) {
    EnsembleSpec spec;
    spec.pipelines = shape[0];
    spec.stages = shape[1];
    spec.tasks = shape[2];
    spec.duration_s = duration;
    const entk::OverheadReport r = run_ensemble(
        experiment_config("xsede.supermic", n), make_ensemble(spec));
    char label[48];
    std::snprintf(label, sizeof(label), "P-%d, S-%d, T-%d", shape[0],
                  shape[1], shape[2]);
    print_report_row(label, r);
  }

  std::printf(
      "\nPaper shape: (16,1,1) and (1,1,16) run concurrently (~%.0fs);\n"
      "(1,16,1) serializes its stages (~%.0fs = 16x). Overheads flat.\n",
      duration, 16 * duration);
  return 0;
}
