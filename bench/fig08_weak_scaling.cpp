// Fig 8: weak scalability on Titan.
//
// 512 / 1,024 / 2,048 / 4,096 one-core Gromacs `mdrun` tasks (~600 s each)
// executed on the same number of cores; every task stages in 3 soft links
// (130 B) and one 550 KB file through the (sequential, single-stager)
// RTS data stager on the Lustre model. Expected shape:
//   - Task Execution Time grows gradually with scale (executor dispatch
//     rate, the ORTE bottleneck of the paper) — not ideal weak scaling;
//   - Data Staging grows linearly with task count (~11 s at 512 tasks to
//     ~88 s at 4,096);
//   - EnTK management overhead roughly constant until it rises at 4,096
//     (the EnTK host starts to strain);
//   - all other overheads flat.
#include <cstdio>

#include "bench/util.hpp"

int main(int argc, char** argv) {
  using namespace entk::bench;
  const long max_tasks = flag_int(argc, argv, "--max-tasks", 4096);
  const double duration = flag_double(argc, argv, "--duration", 600.0);

  std::printf("Fig 8: weak scalability on Titan (1-core mdrun ~%.0fs,\n"
              "cores = tasks, staging 3 links + 550KB per task)\n\n",
              duration);
  print_report_header("tasks/cores");

  for (long tasks = 512; tasks <= max_tasks; tasks *= 2) {
    EnsembleSpec spec;
    spec.tasks = static_cast<int>(tasks);
    spec.duration_s = duration;
    spec.executable = "mdrun";
    spec.mdrun_staging = true;
    entk::AppManagerConfig config =
        experiment_config("ornl.titan", static_cast<int>(tasks));
    const entk::OverheadReport r =
        run_ensemble(std::move(config), make_ensemble(spec));
    char label[32];
    std::snprintf(label, sizeof(label), "%ld/%ld", tasks, tasks);
    print_report_row(label, r);
  }

  std::printf(
      "\nPaper shape: staging ~11s @512 -> ~88s @4096 (sequential stager on\n"
      "Lustre); exec time grows gradually above %.0fs (dispatch-rate limit);\n"
      "management overhead rises at 4,096 tasks; the rest is flat.\n",
      duration);
  return 0;
}
