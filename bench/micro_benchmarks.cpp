// Microbenchmark / ablation suite (google-benchmark).
//
// Measures the substrate costs behind the figure benches and the design
// choices DESIGN.md calls out: broker publish/consume throughput vs the
// number of consumers, journal durability cost, JSON round-trip cost of a
// task description, state-store commit throughput with and without a disk
// journal, sync-protocol round trips with and without acks, and NodeMap
// placement cost at pilot scale.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <filesystem>
#include <thread>

#include "src/core/state_store.hpp"
#include "src/core/sync.hpp"
#include "src/core/task.hpp"
#include "src/mq/broker.hpp"
#include "src/sim/node_map.hpp"

static std::string make_temp_dir() {
  static int counter = 0;
  const std::string dir = "/tmp/entk_bench_" + std::to_string(::getpid()) +
                          "_" + std::to_string(counter++);
  std::filesystem::create_directories(dir);
  return dir;
}

// ------------------------------------------------------------ mq broker

static void BM_BrokerPublishConsume(benchmark::State& state) {
  using namespace entk::mq;
  Broker broker;
  broker.declare_queue("bench");
  Message msg;
  msg.set_body("{\"uid\":\"task.0001\",\"duration_s\":100}");
  for (auto _ : state) {
    broker.publish("bench", msg);
    auto d = broker.get("bench", 0.0);
    broker.ack("bench", d->delivery_tag);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BrokerPublishConsume);

static void BM_BrokerDurablePublish(benchmark::State& state) {
  using namespace entk::mq;
  const std::string dir = make_temp_dir();
  Broker broker("durable", dir);
  broker.declare_queue("bench", {.durable = true});
  Message msg;
  msg.set_body("{\"uid\":\"task.0001\"}");
  for (auto _ : state) {
    broker.publish("bench", msg);
    auto d = broker.get("bench", 0.0);
    broker.ack("bench", d->delivery_tag);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BrokerDurablePublish);

static void BM_BrokerFanIn(benchmark::State& state) {
  // Ablation for Fig 6: aggregate throughput with N producer threads
  // hammering one queue while this thread consumes.
  using namespace entk::mq;
  const int producers = static_cast<int>(state.range(0));
  Broker broker;
  broker.declare_queue("fan");
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&broker, &stop] {
      Message msg;
      msg.set_body("x");
      while (!stop.load()) {
        try {
          broker.publish("fan", msg);
        } catch (const entk::MqError&) {
          return;
        }
      }
    });
  }
  for (auto _ : state) {
    auto d = broker.get("fan", 0.01);
    if (d) broker.ack("fan", d->delivery_tag);
  }
  stop = true;
  broker.close();
  for (auto& t : threads) t.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BrokerFanIn)->Arg(1)->Arg(4);

// ----------------------------------------------------------------- json

static void BM_TaskJsonRoundTrip(benchmark::State& state) {
  entk::Task task("bench");
  task.executable = "mdrun";
  task.arguments = {"-deffnm", "md", "-ntomp", "1"};
  task.duration_s = 600.0;
  task.input_staging.push_back(
      {"conf.gro", "sandbox/", entk::saga::StagingAction::Copy, 550000});
  for (auto _ : state) {
    const std::string wire = task.to_json().dump();
    benchmark::DoNotOptimize(entk::json::parse(wire));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TaskJsonRoundTrip);

// ---------------------------------------------------------- state store

static void BM_StateStoreCommitMemory(benchmark::State& state) {
  entk::StateStore store;
  long i = 0;
  for (auto _ : state) {
    store.commit("task." + std::to_string(i++ % 1024), "task", "SCHEDULED",
                 "SUBMITTING", "bench");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateStoreCommitMemory);

static void BM_StateStoreCommitJournaled(benchmark::State& state) {
  const std::string dir = make_temp_dir();
  entk::StateStore store(dir + "/states.jsonl");
  long i = 0;
  for (auto _ : state) {
    store.commit("task." + std::to_string(i++ % 1024), "task", "SCHEDULED",
                 "SUBMITTING", "bench");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateStoreCommitJournaled);

// -------------------------------------------------------- sync protocol

class SyncBench {
 public:
  SyncBench() {
    broker_ = std::make_shared<entk::mq::Broker>("sync_bench");
    broker_->declare_queue("q.states");
    auto pipeline = std::make_shared<entk::Pipeline>("p");
    auto stage = std::make_shared<entk::Stage>("s");
    task_ = std::make_shared<entk::Task>("t");
    task_->duration_s = 1;
    stage->add_task(task_);
    pipeline->add_stage(stage);
    registry_.add_pipeline(pipeline);
    sync_ = std::make_unique<entk::Synchronizer>(
        broker_, "q.states", &registry_, &store_,
        std::make_shared<entk::Profiler>());
    sync_->start();
    client_ = std::make_unique<entk::SyncClient>(broker_, "bench", "q.states",
                                                 "q.ack.bench");
  }
  ~SyncBench() {
    sync_->stop();
    broker_->close();
  }

  entk::SyncClient& client() { return *client_; }
  entk::TaskPtr task() { return task_; }

 private:
  entk::mq::BrokerPtr broker_;
  entk::ObjectRegistry registry_;
  entk::StateStore store_;
  std::unique_ptr<entk::Synchronizer> sync_;
  std::unique_ptr<entk::SyncClient> client_;
  entk::TaskPtr task_;
};

static void BM_SyncRoundTripAcked(benchmark::State& state) {
  SyncBench bench;
  // Ping-pong between two states that are mutually reachable:
  // Failed -> Described -> ... is the only cycle, so drive it via
  // Scheduling/Failed transitions.
  bench.task()->set_state(entk::TaskState::Scheduling);
  bool to_failed = true;
  for (auto _ : state) {
    if (to_failed) {
      bench.client().sync(bench.task()->uid(), "task", "SCHEDULING", "FAILED",
                          true);
    } else {
      bench.client().sync(bench.task()->uid(), "task", "FAILED", "DESCRIBED",
                          true);
      bench.client().sync(bench.task()->uid(), "task", "DESCRIBED",
                          "SCHEDULING", true);
    }
    to_failed = !to_failed;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SyncRoundTripAcked);

// -------------------------------------------------------------- nodemap

static void BM_NodeMapPlacement(benchmark::State& state) {
  // Pilot-scale first-fit placement: Titan-like 4,096 nodes, 1-core units.
  entk::sim::NodeMap nm(4096, 16, 0);
  std::vector<std::uint64_t> allocs;
  allocs.reserve(1024);
  for (auto _ : state) {
    auto a = nm.try_allocate({.cores = 1});
    if (a) {
      allocs.push_back(a->id);
    }
    if (allocs.size() >= 1024) {
      for (auto id : allocs) nm.release(id);
      allocs.clear();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NodeMapPlacement);

static void BM_NodeMapExclusiveNodes(benchmark::State& state) {
  // The Fig-10 shape: 384-node exclusive allocations on 12,288 nodes.
  entk::sim::NodeMap nm(12288, 16, 1);
  std::vector<std::uint64_t> allocs;
  for (auto _ : state) {
    auto a = nm.try_allocate(
        {.cores = 384 * 16, .gpus = 0, .exclusive_nodes = true});
    if (a) {
      allocs.push_back(a->id);
    } else {
      for (auto id : allocs) nm.release(id);
      allocs.clear();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NodeMapExclusiveNodes);

BENCHMARK_MAIN();
