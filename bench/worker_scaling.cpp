// Worker-scaling bench: N WorkerRuntimes (the entk_worker daemon's core,
// in-process to keep the measurement free of TCP noise) drain one shared
// Pending queue of duration-modeled tasks, exactly like the distributed
// execution plane. Measures ensemble completion rate vs the worker count.
//
// The acceptance gate (--check) is the ISSUE's scaling proof: 4 workers
// must complete the same ensemble at >= 2x the rate of 1 worker — i.e.
// the sharded-claim machinery (per-task messages, bounded prefetch,
// ack-on-completion ledgers) actually distributes work instead of letting
// one consumer swallow the queue.
//
// usage: worker_scaling [--tasks N] [--duration-vs S] [--clock-scale S]
//        [--cores N] [--reps N] [--check] [--json-out PATH]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/util.hpp"
#include "src/common/clock.hpp"
#include "src/rts/local_rts.hpp"
#include "src/worker/worker_runtime.hpp"

namespace {

using namespace entk;

struct Run {
  double elapsed_s = 0.0;
  double tasks_per_s = 0.0;
};

/// One measured drain: `workers` runtimes, each with `cores` executor
/// threads, against one freshly filled Pending queue.
Run drain_ensemble(int workers, int cores, int tasks, double duration_vs,
                   double clock_scale) {
  auto broker = std::make_shared<mq::Broker>("bench_workers");
  broker->declare_queue("q.pending");
  broker->declare_queue("q.completed");
  broker->declare_queue("q.states");  // transitions accumulate, undrained
  auto profiler = std::make_shared<Profiler>();
  auto clock = std::make_shared<ScaledClock>(clock_scale);

  std::vector<std::unique_ptr<worker::WorkerRuntime>> fleet;
  for (int w = 0; w < workers; ++w) {
    worker::WorkerRuntimeConfig cfg;
    cfg.worker_id = "bw" + std::to_string(w);
    cfg.ack_queue = "q.ack." + cfg.worker_id;
    cfg.ack_on_completion = true;
    cfg.max_in_flight = static_cast<std::size_t>(2 * cores);
    cfg.sample_queue_depths = false;
    rts::RtsFactory factory = [clock, profiler, cores]() -> rts::RtsPtr {
      return std::make_shared<rts::LocalRts>(
          rts::LocalRtsConfig{.workers = cores}, clock, profiler);
    };
    worker::UnitResolver resolver =
        [](const std::string&) -> std::optional<rts::TaskUnit> {
      return std::nullopt;  // daemon mode: units arrive inline
    };
    fleet.push_back(std::make_unique<worker::WorkerRuntime>(
        cfg.worker_id, cfg, broker, resolver, "q.pending", "q.completed",
        "q.states", factory, profiler));
    fleet.back()->acquire_resources();
    fleet.back()->start();
  }

  // One message per task, as the --workers WFProcessor publishes: the
  // work-sharing granule the fleet splits.
  std::vector<mq::Message> msgs;
  msgs.reserve(static_cast<std::size_t>(tasks));
  for (int i = 0; i < tasks; ++i) {
    rts::TaskUnit unit;
    unit.uid = "task.bench" + std::to_string(i);
    unit.name = unit.uid;
    unit.executable = "sleep";
    unit.duration_s = duration_vs;
    json::Value msg;
    json::Array arr;
    arr.push_back(unit.to_json());
    msg["units"] = std::move(arr);
    msgs.push_back(mq::Message::json_body("q.pending", std::move(msg)));
  }

  const double t0 = wall_now_s();
  broker->publish_batch("q.pending", std::move(msgs));
  int done = 0;
  const double deadline = t0 + 120.0;
  while (done < tasks && wall_now_s() < deadline) {
    const auto batch = broker->get_batch("q.completed", 64, 0.01);
    if (batch.empty()) continue;
    std::vector<std::uint64_t> tags;
    tags.reserve(batch.size());
    for (const mq::Delivery& d : batch) tags.push_back(d.delivery_tag);
    broker->ack_batch("q.completed", tags);
    done += static_cast<int>(batch.size());
  }
  const double elapsed = wall_now_s() - t0;

  for (auto& runtime : fleet) runtime->stop();
  broker->close();

  Run r;
  r.elapsed_s = elapsed;
  r.tasks_per_s = done >= tasks ? tasks / elapsed : 0.0;
  return r;
}

Run best_of(int reps, int workers, int cores, int tasks, double duration_vs,
            double clock_scale) {
  Run best;
  for (int i = 0; i < reps; ++i) {
    const Run r = drain_ensemble(workers, cores, tasks, duration_vs,
                                 clock_scale);
    if (r.tasks_per_s > best.tasks_per_s) best = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using entk::bench::flag_double;
  using entk::bench::flag_int;
  using entk::bench::flag_present;

  const int tasks = static_cast<int>(flag_int(argc, argv, "--tasks", 32));
  const double duration_vs = flag_double(argc, argv, "--duration-vs", 100.0);
  const double clock_scale = flag_double(argc, argv, "--clock-scale", 1e-3);
  const int cores = static_cast<int>(flag_int(argc, argv, "--cores", 2));
  const int reps = static_cast<int>(flag_int(argc, argv, "--reps", 3));
  const bool check = flag_present(argc, argv, "--check");
  std::string json_out = "BENCH_workers.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json-out") json_out = argv[i + 1];
  }

  std::printf(
      "worker scaling: %d tasks x %.0f virtual s (%.1f ms wall each), "
      "%d cores/worker, best of %d\n",
      tasks, duration_vs, duration_vs * clock_scale * 1e3, cores, reps);
  std::printf("%8s %14s %14s %9s\n", "workers", "tasks/s", "elapsed (s)",
              "speedup");

  const Run one = best_of(reps, 1, cores, tasks, duration_vs, clock_scale);
  std::printf("%8d %14.1f %14.3f %9s\n", 1, one.tasks_per_s, one.elapsed_s,
              "1.00x");
  const Run two = best_of(reps, 2, cores, tasks, duration_vs, clock_scale);
  std::printf("%8d %14.1f %14.3f %8.2fx\n", 2, two.tasks_per_s,
              two.elapsed_s,
              one.tasks_per_s > 0 ? two.tasks_per_s / one.tasks_per_s : 0.0);
  const Run four = best_of(reps, 4, cores, tasks, duration_vs, clock_scale);
  const double speedup =
      one.tasks_per_s > 0 ? four.tasks_per_s / one.tasks_per_s : 0.0;
  std::printf("%8d %14.1f %14.3f %8.2fx\n", 4, four.tasks_per_s,
              four.elapsed_s, speedup);

  entk::json::Value doc;
  doc["bench"] = "worker_scaling";
  doc["tasks"] = tasks;
  doc["duration_virtual_s"] = duration_vs;
  doc["clock_scale"] = clock_scale;
  doc["cores_per_worker"] = cores;
  doc["reps"] = reps;
  doc["rate_1w_tasks_per_s"] = one.tasks_per_s;
  doc["rate_2w_tasks_per_s"] = two.tasks_per_s;
  doc["rate_4w_tasks_per_s"] = four.tasks_per_s;
  doc["speedup_4w_vs_1w"] = speedup;
  std::ofstream out(json_out);
  out << doc.dump() << "\n";
  std::printf("results written to %s\n", json_out.c_str());

  if (check) {
    if (one.tasks_per_s <= 0 || four.tasks_per_s <= 0) {
      std::fprintf(stderr,
                   "WORKER SCALING CHECK FAILED: a configuration did not "
                   "drain the ensemble\n");
      return 1;
    }
    if (speedup < 2.0) {
      std::fprintf(stderr,
                   "WORKER SCALING CHECK FAILED: expected 4 workers >= 2x "
                   "the 1-worker completion rate, got %.2fx\n",
                   speedup);
      return 1;
    }
    std::printf("check passed: 4 workers = %.2fx the 1-worker rate\n",
                speedup);
  }
  return 0;
}
