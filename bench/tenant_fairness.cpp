// tenant_fairness: the multi-tenant acceptance gate of the shared broker
// daemon.
//
// One in-process daemon (mq::Broker behind net::BrokerServer with a
// TenantRegistry) hosts a dozen concurrent "ensembles" with mixed task
// graphs — sleep-like heartbeat tasks, mdrun-like mid-size descriptors,
// seismic-like wide fan-out payloads, anen-like station batches — each as
// its own tenant, plus one FLOODER tenant publishing as fast as the
// socket allows against a publish-rate quota it overruns ~10x.
//
// Each profile is CLOSED-LOOP PACED at its own target rate — ensembles
// publish at their workload's cadence, not at socket speed — so a tenant's
// completion rate is demand-bound, and the aggregate demand of all twelve
// tenants stays well under the daemon's capacity. What the gate then
// measures is exactly the tenancy claim: whether the flood eats the
// headroom (quota + DRR working) or eats everyone's demand (broken).
//
// Two phases per tenant profile:
//
//   solo:       the profile runs alone on an idle daemon — its baseline
//               completion rate (publish -> get -> ack full cycles);
//   contended:  all profiles run concurrently WITH the flooder at full
//               blast.
//
// The gate (--check):
//   * the flooder is actually throttled (tenant.flood.throttled > 0 on
//     the daemon AND kErrQuota retries observed client-side), and
//   * every non-flooding tenant's contended completion rate stays
//     >= 0.5x its solo rate — the deficit-round-robin input pass plus the
//     rate quota turn the flood into the flooder's problem, not everyone
//     else's.
//
// Results (per-tenant solo/contended rates, flooder admission stats, the
// worst fairness ratio) are written as BENCH_tenancy.json.
//
// Flags: --scale F (workload multiplier, default 1.0), --check,
//        --json-out PATH (default BENCH_tenancy.json).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/util.hpp"
#include "src/common/profiler.hpp"
#include "src/json/json.hpp"
#include "src/mq/broker.hpp"
#include "src/mq/message.hpp"
#include "src/mq/tenant.hpp"
#include "src/net/broker_server.hpp"
#include "src/net/remote_broker.hpp"

namespace {

using namespace entk;
using Clock = std::chrono::steady_clock;

// One ensemble's traffic shape: messages per run, payload bytes per task
// descriptor, the batch its dispatcher uses, and the publish cadence it
// paces itself to. The four classes mirror the repo's workload families
// (see bench/fig* and the seismic/anen extensions); each runs ~1 s solo.
struct Profile {
  std::string id;
  int messages;
  int payload_bytes;
  int batch;
  double target_rate;  ///< messages/second the ensemble tries to sustain
};

std::vector<Profile> make_profiles(double scale) {
  auto n = [scale](int base) {
    return std::max(1, static_cast<int>(base * scale));
  };
  std::vector<Profile> profiles;
  for (int i = 0; i < 3; ++i) {
    profiles.push_back({"sleep-" + std::to_string(i), n(2000), 64, 16, 2000});
    profiles.push_back(
        {"mdrun-" + std::to_string(i), n(1500), 2048, 32, 1500});
    profiles.push_back({"seismic-" + std::to_string(i), n(400), 8192, 8, 400});
    profiles.push_back({"anen-" + std::to_string(i), n(3000), 512, 64, 3000});
  }
  return profiles;
}

mq::Message make_message(const std::string& queue, int i, int payload_bytes) {
  json::Value payload;
  payload["uid"] = "task." + std::to_string(i);
  json::Array data;
  const int doubles = std::max(1, payload_bytes / 8);
  data.reserve(static_cast<std::size_t>(doubles));
  for (int k = 0; k < doubles; ++k) data.push_back(1.5e9 + i + 0.001 * k);
  payload["data"] = std::move(data);
  return mq::Message::json_body(queue, std::move(payload));
}

/// Run one profile's full workload (publish -> get -> ack cycles, batched
/// like a WFProcessor/ExecManager pair) as its tenant, publish side paced
/// to the profile's target rate on an absolute schedule (late batches are
/// not compounded). Returns completed messages per second — at most the
/// target rate; lower only when the daemon can't serve the demand.
double run_profile(const std::string& endpoint, const Profile& profile) {
  net::RemoteBrokerConfig cfg;
  cfg.endpoint = endpoint;
  cfg.tenant = profile.id;
  net::RemoteBroker client(cfg);
  client.declare_queue("q.work", {});
  const auto t0 = Clock::now();
  auto next_due = t0;
  const auto batch_interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(profile.batch / profile.target_rate));
  int published = 0;
  int completed = 0;
  while (completed < profile.messages) {
    if (published < profile.messages) {
      std::this_thread::sleep_until(next_due);
      next_due += batch_interval;
      std::vector<mq::Message> batch;
      const int n = std::min(profile.batch, profile.messages - published);
      batch.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        batch.push_back(
            make_message("q.work", published + i, profile.payload_bytes));
      }
      client.publish_batch("q.work", std::move(batch));
      published += n;
    }
    const auto got = client.get_batch(
        "q.work", static_cast<std::size_t>(profile.batch), 1.0);
    std::vector<std::uint64_t> tags;
    tags.reserve(got.size());
    for (const auto& d : got) tags.push_back(d.delivery_tag);
    completed += static_cast<int>(client.ack_batch("q.work", tags));
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  client.close();
  return elapsed > 0 ? profile.messages / elapsed : 0.0;
}

struct FloodStats {
  std::uint64_t admitted = 0;
  std::uint64_t client_throttles = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::flag_double(argc, argv, "--scale", 1.0);
  const bool check = bench::flag_present(argc, argv, "--check");
  std::string json_out = "BENCH_tenancy.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json-out") json_out = argv[i + 1];
  }

  const std::vector<Profile> profiles = make_profiles(scale);

  // The flooder's quota: a sustained publish rate far below what the
  // loopback transport can push, so overrunning it ~10x is guaranteed.
  const double flood_rate = 2000.0;
  auto tenants = std::make_shared<mq::TenantRegistry>();
  mq::TenantQuota flood_quota;
  flood_quota.publish_rate = flood_rate;
  flood_quota.burst = 400.0;
  tenants->register_tenant("flood", flood_quota);

  auto broker = std::make_shared<mq::Broker>("bench_tenancy");
  net::BrokerServerConfig server_cfg;
  server_cfg.tenants = tenants;
  net::BrokerServer server(broker, server_cfg, std::make_shared<Profiler>());
  server.start();
  const std::string endpoint = server.endpoint();

  std::printf("tenancy bench: %zu tenants + flooder (quota %.0f msg/s) on "
              "%s\n",
              profiles.size(), flood_rate, endpoint.c_str());

  // ------------------------------------------------------------- solo phase
  std::vector<double> solo_rate(profiles.size(), 0.0);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    solo_rate[i] = run_profile(endpoint, profiles[i]);
  }

  // -------------------------------------------------------- contended phase
  std::atomic<bool> stop_flood{false};
  FloodStats flood;
  std::thread flood_thread([&] {
    net::RemoteBrokerConfig cfg;
    cfg.endpoint = endpoint;
    cfg.tenant = "flood";
    net::RemoteBroker client(cfg);
    client.declare_queue("q.work", {});
    int seq = 0;
    while (!stop_flood.load(std::memory_order_relaxed)) {
      // 200-message batches, no pacing: the offered load is whatever the
      // socket takes, an order of magnitude past the 2000/s quota.
      std::vector<mq::Message> batch;
      batch.reserve(200);
      for (int i = 0; i < 200; ++i) {
        batch.push_back(make_message("q.work", seq++, 1024));
      }
      try {
        client.publish_batch("q.work", std::move(batch));
        flood.admitted += 200;
      } catch (const mq::QuotaError&) {
        // Retry budget exhausted mid-flood: the quota is doing its job.
      }
      // Drain + ack to keep the flooder's own backlog (and this process's
      // memory) bounded; consuming is deliberately unthrottled.
      const auto got = client.get_batch("q.work", 200, 0.0);
      std::vector<std::uint64_t> tags;
      tags.reserve(got.size());
      for (const auto& d : got) tags.push_back(d.delivery_tag);
      client.ack_batch("q.work", tags);
    }
    flood.client_throttles = client.quota_throttled();
    client.close();
  });

  std::vector<double> contended_rate(profiles.size(), 0.0);
  {
    std::vector<std::thread> threads;
    threads.reserve(profiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      threads.emplace_back([&, i] {
        contended_rate[i] = run_profile(endpoint, profiles[i]);
      });
    }
    for (auto& t : threads) t.join();
  }
  stop_flood.store(true, std::memory_order_relaxed);
  flood_thread.join();

  const std::uint64_t daemon_throttles = tenants->find("flood")->throttled();
  const std::uint64_t flood_published = tenants->find("flood")->published();

  server.stop();
  broker->close();

  // ------------------------------------------------------------- reporting
  std::printf("%14s %14s %14s %8s\n", "tenant", "solo msg/s",
              "contended", "ratio");
  double worst_ratio = 1e9;
  std::string worst_tenant;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const double ratio =
        solo_rate[i] > 0 ? contended_rate[i] / solo_rate[i] : 0.0;
    if (ratio < worst_ratio) {
      worst_ratio = ratio;
      worst_tenant = profiles[i].id;
    }
    std::printf("%14s %14.0f %14.0f %7.2fx\n", profiles[i].id.c_str(),
                solo_rate[i], contended_rate[i], ratio);
  }
  std::printf("flooder: admitted=%llu (daemon published=%llu) "
              "daemon_throttles=%llu client_retries=%llu\n",
              static_cast<unsigned long long>(flood.admitted),
              static_cast<unsigned long long>(flood_published),
              static_cast<unsigned long long>(daemon_throttles),
              static_cast<unsigned long long>(flood.client_throttles));
  std::printf("worst fairness ratio: %.2fx (%s)\n", worst_ratio,
              worst_tenant.c_str());

  json::Value doc;
  doc["bench"] = "tenant_fairness";
  doc["scale"] = scale;
  doc["flood_rate_quota"] = flood_rate;
  json::Array rows;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    json::Value row;
    row["tenant"] = profiles[i].id;
    row["messages"] = static_cast<std::int64_t>(profiles[i].messages);
    row["payload_bytes"] = static_cast<std::int64_t>(
        profiles[i].payload_bytes);
    row["solo_msgs_per_s"] = solo_rate[i];
    row["contended_msgs_per_s"] = contended_rate[i];
    row["ratio"] = solo_rate[i] > 0 ? contended_rate[i] / solo_rate[i] : 0.0;
    rows.push_back(std::move(row));
  }
  doc["tenants"] = std::move(rows);
  doc["flood_admitted"] = static_cast<std::int64_t>(flood.admitted);
  doc["flood_daemon_throttles"] =
      static_cast<std::int64_t>(daemon_throttles);
  doc["flood_client_retries"] =
      static_cast<std::int64_t>(flood.client_throttles);
  doc["worst_ratio"] = worst_ratio;
  doc["worst_tenant"] = worst_tenant;
  std::ofstream out(json_out);
  out << doc.dump() << "\n";
  std::printf("results written to %s\n", json_out.c_str());

  bool failed = false;
  if (check && daemon_throttles == 0) {
    std::fprintf(stderr,
                 "TENANCY CHECK FAILED: the flooder was never throttled "
                 "(offered >> %.0f msg/s quota, daemon_throttles=0)\n",
                 flood_rate);
    failed = true;
  }
  if (check && worst_ratio < 0.5) {
    std::fprintf(stderr,
                 "TENANCY CHECK FAILED: tenant %s degraded to %.2fx of its "
                 "solo rate under flood (gate: >= 0.5x)\n",
                 worst_tenant.c_str(), worst_ratio);
    failed = true;
  }
  if (check && !failed) {
    std::printf("TENANCY CHECK PASSED: flooder throttled %llu times, every "
                "tenant >= %.2fx of its solo rate\n",
                static_cast<unsigned long long>(daemon_throttles),
                worst_ratio);
  }
  return failed ? 1 : 0;
}
