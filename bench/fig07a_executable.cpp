// Experiment 1 (paper Fig 7a): overheads vs task executable.
//
// SuperMIC, one pipeline with one stage of 16 tasks, 300 s tasks; the
// executables are Gromacs `mdrun` (with its input staging: 3 links +
// 550 KB configuration) and `sleep`. Expected shape: every overhead is
// essentially identical across executables — EnTK is executable-agnostic —
// and Task Execution Time ~ 300 s for both.
#include <cstdio>

#include "bench/util.hpp"

int main(int argc, char** argv) {
  using namespace entk::bench;
  const int tasks = static_cast<int>(flag_int(argc, argv, "--tasks", 16));
  const double duration = flag_double(argc, argv, "--duration", 300.0);

  std::printf("Experiment 1 (Fig 7a): overheads vs task executable\n");
  std::printf("CI xsede.supermic, PST (1,1,%d), duration %.0fs\n\n", tasks,
              duration);
  print_report_header("executable");

  for (const bool mdrun : {true, false}) {
    EnsembleSpec spec;
    spec.tasks = tasks;
    spec.duration_s = duration;
    spec.executable = mdrun ? "mdrun" : "sleep";
    spec.mdrun_staging = mdrun;
    const entk::OverheadReport r = run_ensemble(
        experiment_config("xsede.supermic", tasks), make_ensemble(spec));
    print_report_row(spec.executable, r);
  }

  std::printf(
      "\nPaper shape: EnTK setup ~0.1s, management ~10s, tear-downs and RTS\n"
      "overhead independent of the executable; exec time ~%.0fs for both.\n",
      duration);
  return 0;
}
