// Shared helpers for the figure-reproduction benches.
#pragma once

#include <string>
#include <vector>

#include "src/core/app_manager.hpp"

namespace entk::bench {

/// Parse "--name value" style flags; returns fallback when absent.
long flag_int(int argc, char** argv, const std::string& name, long fallback);
double flag_double(int argc, char** argv, const std::string& name,
                   double fallback);
bool flag_present(int argc, char** argv, const std::string& name);

/// Build an application of `pipelines` x `stages` x `tasks` modeled tasks.
struct EnsembleSpec {
  int pipelines = 1;
  int stages = 1;
  int tasks = 16;
  double duration_s = 100.0;
  std::string executable = "sleep";
  int cores_per_task = 1;
  /// When true, each task stages 3 soft links (130 B) in and copies one
  /// 550 KB input file — the Gromacs mdrun pattern of the scaling runs.
  bool mdrun_staging = false;
  /// When > 0, each task instead copies one input of this many bytes
  /// (heavy-staging workloads, e.g. restart files).
  std::uint64_t staging_bytes = 0;
};

std::vector<PipelinePtr> make_ensemble(const EnsembleSpec& spec);

/// AppManager config for overhead experiments on a named CI. Queue wait is
/// zero (the paper's overhead analysis excludes it).
AppManagerConfig experiment_config(const std::string& ci, int cores);

/// Run and return the report (convenience wrapper).
OverheadReport run_ensemble(AppManagerConfig config,
                            std::vector<PipelinePtr> pipelines);

/// Print one labelled overhead row set, paper-style.
void print_report_header(const std::string& sweep_name);
void print_report_row(const std::string& label, const OverheadReport& r);

/// Current process RSS / peak RSS in MB (from /proc/self/status).
double rss_mb();
double peak_rss_mb();

}  // namespace entk::bench
