// Adaptivity acceptance bench: generator-driven search vs static sweep.
//
// Both strategies minimize the same 1-D misfit to the same resolution
// under EnTK; the figure of merit is the task budget (evaluations
// actually executed).
//   - static: the classic pre-enumerated parameter sweep — to guarantee a
//     sample within `tol` of the optimum it must grid the whole domain at
//     that resolution, and every grid point is a task.
//   - adaptive: an ensemble::Generator brackets the minimum and submits
//     geometrically narrowing batches; the rule engine finishes the
//     pipeline when the target misfit is reached.
//
// Acceptance gate (--check): the adaptive run must reach the target with
// <= 0.5x the static sweep's task budget. Results go to --json-out
// (BENCH_ensemble.json).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <string>

#include "bench/util.hpp"
#include "src/ensemble/controller.hpp"

namespace {

constexpr double kLo = 0.0;
constexpr double kHi = 8.0;
constexpr double kOptimum = 2.44;

double misfit_of(double x) {
  const double d = x - kOptimum;
  return d * d;
}

entk::AppManagerConfig bench_config() {
  entk::AppManagerConfig config;
  config.resource.resource = "local.localhost";
  config.resource.cpus = 32;
  config.clock_scale = 1e-4;
  config.resource.rts_teardown_base_s = 0.05;
  return config;
}

struct RunResult {
  std::size_t tasks = 0;
  double best_misfit = std::numeric_limits<double>::infinity();
  double wall_s = 0.0;
};

// Static sweep: grid the domain finely enough that some point is within
// sqrt(tol) of the optimum, and run every grid point as a task.
RunResult run_static(double tol) {
  const double spacing = 2.0 * std::sqrt(tol);
  const int n = static_cast<int>(std::ceil((kHi - kLo) / spacing)) + 1;

  auto best = std::make_shared<double>(
      std::numeric_limits<double>::infinity());
  auto mutex = std::make_shared<std::mutex>();

  auto pipeline = std::make_shared<entk::Pipeline>("static-sweep");
  auto stage = std::make_shared<entk::Stage>("sweep");
  for (int i = 0; i < n; ++i) {
    const double x = kLo + (kHi - kLo) * i / (n - 1);
    stage->add_task(entk::ensemble::make_task(
        "sweep-" + std::to_string(i), "sweep",
        [x, best, mutex](entk::json::Value& values) {
          const double m = misfit_of(x);
          values["misfit"] = m;
          std::lock_guard<std::mutex> lock(*mutex);
          *best = std::min(*best, m);
          return 0;
        },
        /*duration_s=*/1.0));
  }
  pipeline->add_stage(stage);

  const auto t0 = std::chrono::steady_clock::now();
  entk::AppManager appman(bench_config());
  appman.add_pipelines({pipeline});
  appman.run();
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.tasks = static_cast<std::size_t>(n);
  r.best_misfit = *best;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

// Adaptive search: batches of `batch` points, bracket shrinks 0.4x per
// round around the best sample; converges when the target is reached.
RunResult run_adaptive(double tol, int batch) {
  auto controller = entk::ensemble::Controller::create();

  struct State {
    double lo = kLo;
    double hi = kHi;
    int round = 0;
  };
  auto state = std::make_shared<State>();
  auto generator = entk::ensemble::make_generator(
      [state, tol, batch](entk::ensemble::ResultView& results,
                          entk::ensemble::Ops& ops)
          -> std::vector<entk::TaskPtr> {
        if (state->round > 0) {
          double best_x = 0.0;
          double best_m = std::numeric_limits<double>::infinity();
          for (const entk::ensemble::Event& ev : results.completed("opt")) {
            const double m = ev.values().get_double("misfit", 1e300);
            if (m < best_m) {
              best_m = m;
              best_x = ev.values().get_double("x", 0.0);
            }
          }
          ops.set_param("best_misfit", best_m);
          if (best_m <= tol || state->round >= 32) return {};
          const double width = 0.4 * (state->hi - state->lo);
          state->lo = best_x - width / 2.0;
          state->hi = best_x + width / 2.0;
        }
        std::vector<entk::TaskPtr> tasks;
        for (int i = 0; i < batch; ++i) {
          const double x =
              state->lo + (state->hi - state->lo) * i / (batch - 1);
          tasks.push_back(entk::ensemble::make_task(
              "opt-r" + std::to_string(state->round) + "-" +
                  std::to_string(i),
              "opt",
              [x](entk::json::Value& values) {
                values["x"] = x;
                values["misfit"] = misfit_of(x);
                return 0;
              },
              /*duration_s=*/1.0));
        }
        ++state->round;
        return tasks;
      });

  auto pipeline = std::make_shared<entk::Pipeline>("adaptive-search");
  controller->run_generator(pipeline, generator, "opt");

  entk::AppManagerConfig config = bench_config();
  controller->attach(config);

  const auto t0 = std::chrono::steady_clock::now();
  entk::AppManager appman(config);
  appman.add_pipelines({pipeline});
  appman.run();
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.tasks = controller->results().total_done();
  r.best_misfit = controller->params().get_double("best_misfit", 1e300);
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const double tol = entk::bench::flag_double(argc, argv, "--tol", 1e-4);
  const int batch =
      static_cast<int>(entk::bench::flag_int(argc, argv, "--batch", 5));
  const bool check = entk::bench::flag_present(argc, argv, "--check");
  std::string json_out = "BENCH_ensemble.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json-out") json_out = argv[i + 1];
  }

  std::printf("ensemble_adaptivity: target misfit <= %.0e on [%.0f, %.0f]\n\n",
              tol, kLo, kHi);

  const RunResult st = run_static(tol);
  const RunResult ad = run_adaptive(tol, batch);
  const double ratio =
      st.tasks ? static_cast<double>(ad.tasks) / st.tasks : 1.0;

  std::printf("%-10s %8s %14s %10s\n", "strategy", "tasks", "best misfit",
              "wall s");
  std::printf("%-10s %8zu %14.3e %10.3f\n", "static", st.tasks,
              st.best_misfit, st.wall_s);
  std::printf("%-10s %8zu %14.3e %10.3f\n", "adaptive", ad.tasks,
              ad.best_misfit, ad.wall_s);
  std::printf("\nadaptive used %.1f%% of the static task budget\n",
              100.0 * ratio);

  entk::json::Value doc;
  doc["bench"] = "ensemble_adaptivity";
  doc["tol"] = tol;
  doc["batch"] = batch;
  doc["static"]["tasks"] = static_cast<std::int64_t>(st.tasks);
  doc["static"]["best_misfit"] = st.best_misfit;
  doc["static"]["wall_s"] = st.wall_s;
  doc["adaptive"]["tasks"] = static_cast<std::int64_t>(ad.tasks);
  doc["adaptive"]["best_misfit"] = ad.best_misfit;
  doc["adaptive"]["wall_s"] = ad.wall_s;
  doc["adaptive"]["budget_ratio"] = ratio;
  std::ofstream out(json_out);
  out << doc.dump() << "\n";
  std::printf("results written to %s\n", json_out.c_str());

  bool failed = false;
  if (ad.best_misfit > tol) {
    std::fprintf(stderr,
                 "ADAPTIVITY CHECK FAILED: adaptive run did not reach the "
                 "target (best %.3e > %.3e)\n",
                 ad.best_misfit, tol);
    failed = true;
  }
  if (check && ratio > 0.5) {
    std::fprintf(stderr,
                 "ADAPTIVITY CHECK FAILED: adaptive budget %.2fx static "
                 "(need <= 0.5x)\n",
                 ratio);
    failed = true;
  }
  return failed ? 1 : 0;
}
