// task_throughput: end-to-end dispatch throughput of the batched pipeline.
//
// Pushes M pipelines x N tasks through AppManager with a no-op RTS that
// completes every unit synchronously inside submit(), so the measured time
// is pure EnTK overhead: Enqueue -> Pending -> Emgr -> (instant RTS) ->
// Done -> Dequeue plus all state synchronization. Sweeps the
// task_batch_size knob to show what bulk broker messages, vectored state
// syncs and completion coalescing buy over the strictly per-task flow.
//
// Flags: --pipelines M (default 4), --tasks N per pipeline (default 256),
//        --reps R best-of-R runs per batch size (default 3),
//        --check (exit nonzero unless batch=256 gives >= 3x batch=1),
//        --profile PREFIX (dump one profiler CSV per batch size),
//        --trace-out PATH / --metrics-out PATH (observability exports of
//        the first batch=256 run: Chrome trace JSON / metrics JSONL),
//        --obs-check (batch=256 only: best-of-R with live metrics off vs
//        on; exit nonzero when the instrumented run loses >= 5% tasks/s),
//        --payload-sweep (64 B / 4 KiB / 64 KiB payloads through 3 broker
//        hops, eager serialize-per-hop vs zero-copy shared payloads, plus
//        an end-to-end 4 KiB A/B; writes BENCH_dispatch.json),
//        --zero-copy-check (payload sweep + exit nonzero unless zero-copy
//        gives >= 1.5x eager msgs/s at 4 KiB),
//        --journal-bench (durable publish latency, per-record flush vs
//        group commit; writes BENCH_dispatch.json),
//        --journal-check (journal bench + exit nonzero unless group commit
//        improves durable publish p95),
//        --dispatch-bench (raw broker hot path: publish_batch / get_batch /
//        ack_batch cycles of 64 B messages across many queues, at shard
//        counts 1 and 4; writes BENCH_dispatch.json),
//        --dispatch-check (dispatch bench + exit nonzero unless the
//        shards=4 broker moves >= 1M msgs/s),
//        --json-out PATH (where the sweep/journal results JSON goes;
//        default BENCH_dispatch.json).
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/util.hpp"
#include "src/mq/broker.hpp"
#include "src/rts/rts.hpp"

namespace {

using entk::rts::Rts;
using entk::rts::RtsStats;
using entk::rts::TaskUnit;
using entk::rts::UnitOutcome;
using entk::rts::UnitResult;

// Completes every unit inside submit() on the caller's thread: zero
// execution cost, zero latency, so EnTK's own dispatch path is the only
// thing on the clock.
class NoopRts final : public Rts {
 public:
  void initialize() override {}

  void set_completion_callback(
      std::function<void(const UnitResult&)> callback) override {
    callback_ = std::move(callback);
  }

  void submit(std::vector<TaskUnit> units) override {
    stats_.units_submitted += units.size();
    for (const TaskUnit& unit : units) {
      UnitResult result;
      result.uid = unit.uid;
      result.name = unit.name;
      result.outcome = UnitOutcome::Done;
      result.exit_code = 0;
      result.metadata = unit.metadata;  // echo payload through the done queue
      callback_(result);
      ++stats_.units_completed;
    }
  }

  bool is_healthy() const override { return true; }
  void terminate() override {}
  void kill() override {}
  RtsStats stats() const override { return stats_; }
  std::vector<std::string> in_flight_units() const override { return {}; }

 private:
  std::function<void(const UnitResult&)> callback_;
  RtsStats stats_;
};

struct Sample {
  std::size_t batch = 0;
  double wall_s = 0.0;
  double tasks_per_s = 0.0;
  double us_per_task = 0.0;
};

struct ObsOptions {
  bool metrics = false;
  std::string trace_out;
  std::string metrics_out;
};

Sample run_once(int pipelines, int tasks, std::size_t batch,
                const char* profile_csv = nullptr,
                const ObsOptions& obs = {},
                std::size_t payload_bytes = 0) {
  entk::bench::EnsembleSpec spec;
  spec.pipelines = pipelines;
  spec.stages = 1;
  spec.tasks = tasks;
  spec.duration_s = 0.0;

  entk::AppManagerConfig config;
  config.resource.resource = "local";
  config.resource.cpus = 16;
  config.resource.walltime_s = 3600;
  config.task_batch_size = batch;
  config.obs.metrics = obs.metrics;
  config.obs.trace_out = obs.trace_out;
  config.obs.metrics_out = obs.metrics_out;
  config.rts_factory = [] { return std::make_shared<NoopRts>(); };

  entk::AppManager appman(std::move(config));
  std::vector<entk::PipelinePtr> ensemble = entk::bench::make_ensemble(spec);
  if (payload_bytes > 0) {
    // Give every task a metadata payload; NoopRts echoes it into the unit
    // result, so the bytes ride q.pending out and q.completed back.
    const std::string data(payload_bytes, 'x');
    for (const entk::PipelinePtr& p : ensemble) {
      for (const entk::StagePtr& stage : p->stages()) {
        for (const entk::TaskPtr& task : stage->tasks()) {
          entk::json::Value meta;
          meta["data"] = data;
          task->metadata = std::move(meta);
        }
      }
    }
  }
  appman.add_pipelines(std::move(ensemble));

  const auto t0 = std::chrono::steady_clock::now();
  appman.run();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (profile_csv != nullptr) appman.profiler()->dump_csv(profile_csv);
  const std::size_t total = static_cast<std::size_t>(pipelines) * tasks;
  if (appman.tasks_done() != total) {
    std::fprintf(stderr, "FATAL: batch=%zu resolved %zu of %zu tasks\n",
                 batch, appman.tasks_done(), total);
    std::exit(2);
  }
  Sample s;
  s.batch = batch;
  s.wall_s = wall_s;
  s.tasks_per_s = static_cast<double>(total) / wall_s;
  s.us_per_task = 1e6 * wall_s / static_cast<double>(total);
  return s;
}

// ------------------------------------------------------- payload hop sweep

struct HopSample {
  std::size_t payload_bytes = 0;
  double wall_s = 0.0;
  double msgs_per_s = 0.0;
  double mb_per_s = 0.0;
};

// Push `messages` structured payloads of `payload_bytes` through three
// in-process broker hops (publish -> consume -> re-publish), mirroring the
// q.pending -> agent -> q.completed chain a task payload crosses. Zero-copy
// mode forwards the shared parsed value (a refcount bump per hop); eager
// mode re-renders the bytes at every publish and re-parses at every consume,
// which is what the seed's json_body()/body_json() pair did.
HopSample run_hops_once(std::size_t payload_bytes, int messages, bool eager) {
  constexpr int kHops = 3;
  constexpr std::size_t kBatch = 64;
  entk::mq::set_eager_serialization(eager);
  entk::mq::Broker broker("bench_hops");
  for (int h = 0; h <= kHops; ++h) {
    broker.declare_queue("hop" + std::to_string(h));
  }
  const std::string data(payload_bytes, 'x');

  const auto t0 = std::chrono::steady_clock::now();
  {  // Producer: structured payloads in, batched like the WFProcessor.
    std::vector<entk::mq::Message> out;
    out.reserve(kBatch);
    for (int i = 0; i < messages; ++i) {
      entk::json::Value payload;
      payload["uid"] = i;
      payload["data"] = data;
      out.push_back(entk::mq::Message::json_body("hop0", std::move(payload)));
      if (out.size() == kBatch || i + 1 == messages) {
        broker.publish_batch("hop0", std::move(out));
        out.clear();
        out.reserve(kBatch);
      }
    }
  }
  for (int h = 0; h < kHops; ++h) {  // Relay hops: consume and forward.
    const std::string from = "hop" + std::to_string(h);
    const std::string to = "hop" + std::to_string(h + 1);
    int consumed = 0;
    while (consumed < messages) {
      std::vector<entk::mq::Delivery> ds = broker.get_batch(from, kBatch, 1.0);
      std::vector<entk::mq::Message> fwd;
      std::vector<std::uint64_t> tags;
      fwd.reserve(ds.size());
      tags.reserve(ds.size());
      for (entk::mq::Delivery& d : ds) {
        std::shared_ptr<const entk::json::Value> payload = d.message.payload();
        entk::mq::Message m;
        m.routing_key = to;
        if (eager) {
          m.set_body(payload->dump());  // seed: serialize again per hop
        } else {
          m.set_payload(std::move(payload));  // refcount bump only
        }
        fwd.push_back(std::move(m));
        tags.push_back(d.delivery_tag);
      }
      consumed += static_cast<int>(ds.size());
      broker.publish_batch(to, std::move(fwd));
      broker.ack_batch(from, tags);
    }
  }
  std::size_t checksum = 0;
  {  // Final consumer: read the payload the way a component would.
    const std::string last = "hop" + std::to_string(kHops);
    int consumed = 0;
    while (consumed < messages) {
      std::vector<entk::mq::Delivery> ds = broker.get_batch(last, kBatch, 1.0);
      std::vector<std::uint64_t> tags;
      tags.reserve(ds.size());
      for (entk::mq::Delivery& d : ds) {
        checksum += d.message.payload()->at("data").as_string().size();
        tags.push_back(d.delivery_tag);
      }
      consumed += static_cast<int>(ds.size());
      broker.ack_batch(last, tags);
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  entk::mq::set_eager_serialization(false);

  if (checksum != payload_bytes * static_cast<std::size_t>(messages)) {
    std::fprintf(stderr, "FATAL: hop sweep lost payload bytes\n");
    std::exit(2);
  }
  HopSample s;
  s.payload_bytes = payload_bytes;
  s.wall_s = wall_s;
  s.msgs_per_s = static_cast<double>(messages) / wall_s;
  s.mb_per_s = s.msgs_per_s * static_cast<double>(payload_bytes) / 1e6;
  return s;
}

// ------------------------------------------------ raw broker dispatch rate

struct DispatchSample {
  std::size_t shards = 0;
  double wall_s = 0.0;
  double msgs_per_s = 0.0;
};

// The distilled million-tasks/s hot path: full broker message cycles
// (publish_batch -> get_batch -> ack_batch, batch 256) of 64 B messages
// across kQueues queues spread over the broker's shards. Workers own
// disjoint queue sets, so with shards > 1 they touch disjoint lock + map
// domains; the queue lookup itself is one atomic snapshot load. The body
// is a single shared 64 B buffer (refcount bump per message), matching
// how the zero-copy pipeline republishes payloads.
DispatchSample run_dispatch_once(std::size_t shards, int messages,
                                 unsigned threads) {
  constexpr std::size_t kBatch = 256;
  constexpr std::size_t kQueues = 8;
  entk::mq::Broker broker("bench_dispatch", "", {}, shards);
  std::vector<std::string> queues;
  for (std::size_t q = 0; q < kQueues; ++q) {
    queues.push_back("dispatch" + std::to_string(q));
    broker.declare_queue(queues.back());
  }
  const auto body =
      std::make_shared<const std::string>(std::string(64, 'x'));

  const int per_thread = messages / static_cast<int>(threads);
  auto worker = [&](unsigned t) {
    // Queues are partitioned round-robin across workers; each worker
    // cycles through its own set so every shard stays warm.
    std::vector<const std::string*> mine;
    for (std::size_t q = t; q < kQueues; q += threads) {
      mine.push_back(&queues[q]);
    }
    std::vector<entk::mq::Message> out;
    std::vector<std::uint64_t> tags;
    int sent = 0;
    std::size_t turn = 0;
    while (sent < per_thread) {
      const std::string& queue = *mine[turn++ % mine.size()];
      const std::size_t n = std::min<std::size_t>(
          kBatch, static_cast<std::size_t>(per_thread - sent));
      out.clear();
      out.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        entk::mq::Message m;
        m.set_body(body);  // shared buffer: refcount bump, no copy
        out.push_back(std::move(m));
      }
      broker.publish_batch(queue, std::move(out));
      std::vector<entk::mq::Delivery> ds = broker.get_batch(queue, n, 1.0);
      tags.clear();
      tags.reserve(ds.size());
      for (const entk::mq::Delivery& d : ds) tags.push_back(d.delivery_tag);
      broker.ack_batch(queue, tags);
      sent += static_cast<int>(ds.size());
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (std::thread& th : pool) th.join();
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const entk::mq::BrokerStats stats = broker.stats();
  if (stats.acked < static_cast<std::size_t>(per_thread) * threads) {
    std::fprintf(stderr, "FATAL: dispatch bench lost messages (%zu acked)\n",
                 stats.acked);
    std::exit(2);
  }
  DispatchSample s;
  s.shards = broker.shard_count();
  s.wall_s = wall_s;
  s.msgs_per_s = static_cast<double>(stats.acked) / wall_s;
  return s;
}

// -------------------------------------------------- durable publish latency

struct JournalSample {
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

// Durable publish latency distribution: every publish appends a journal
// record, either flushed per record (the seed's fflush-per-publish) or
// handed to the group-commit flusher (size-or-deadline batches).
JournalSample run_journal_once(bool sync_every_append, int publishes,
                               std::size_t payload_bytes) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("entk_bench_journal_" + std::to_string(::getpid()) +
       (sync_every_append ? "_sync" : "_gc"));
  fs::remove_all(dir);
  fs::create_directories(dir);

  std::vector<double> lat_us;
  lat_us.reserve(static_cast<std::size_t>(publishes));
  {
    entk::mq::JournalConfig cfg;
    cfg.sync_every_append = sync_every_append;
    entk::mq::Broker broker("bench_journal", dir.string(), cfg);
    entk::mq::QueueOptions opts;
    opts.durable = true;
    broker.declare_queue("durable", opts);
    const std::string data(payload_bytes, 'x');
    for (int i = 0; i < publishes; ++i) {
      entk::json::Value payload;
      payload["uid"] = i;
      payload["data"] = data;
      entk::mq::Message msg =
          entk::mq::Message::json_body("durable", std::move(payload));
      const auto t0 = std::chrono::steady_clock::now();
      broker.publish("durable", std::move(msg));
      lat_us.push_back(1e6 * std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count());
    }
    broker.close();  // durability barrier: drain the final segment
  }
  fs::remove_all(dir);

  std::sort(lat_us.begin(), lat_us.end());
  auto pct = [&lat_us](double p) {
    const std::size_t i = std::min(
        lat_us.size() - 1, static_cast<std::size_t>(p * lat_us.size()));
    return lat_us[i];
  };
  JournalSample s;
  s.p50_us = pct(0.50);
  s.p95_us = pct(0.95);
  s.p99_us = pct(0.99);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const int pipelines =
      static_cast<int>(entk::bench::flag_int(argc, argv, "--pipelines", 4));
  const int tasks =
      static_cast<int>(entk::bench::flag_int(argc, argv, "--tasks", 256));
  const long reps = entk::bench::flag_int(argc, argv, "--reps", 3);
  const bool check = entk::bench::flag_present(argc, argv, "--check");

  std::printf("task_throughput: %d pipeline(s) x %d task(s), no-op RTS\n\n",
              pipelines, tasks);

  // --profile PREFIX: dump one CSV event trace per batch size.
  std::string profile_prefix;
  std::string json_out = "BENCH_dispatch.json";
  ObsOptions export_obs;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--profile") profile_prefix = argv[i + 1];
    if (std::string(argv[i]) == "--trace-out") export_obs.trace_out = argv[i + 1];
    if (std::string(argv[i]) == "--metrics-out")
      export_obs.metrics_out = argv[i + 1];
    if (std::string(argv[i]) == "--json-out") json_out = argv[i + 1];
  }
  export_obs.metrics = !export_obs.trace_out.empty() ||
                       !export_obs.metrics_out.empty();

  const bool zero_copy_check =
      entk::bench::flag_present(argc, argv, "--zero-copy-check");
  const bool payload_sweep =
      zero_copy_check || entk::bench::flag_present(argc, argv, "--payload-sweep");
  const bool journal_check =
      entk::bench::flag_present(argc, argv, "--journal-check");
  const bool journal_bench =
      journal_check || entk::bench::flag_present(argc, argv, "--journal-bench");
  const bool dispatch_check =
      entk::bench::flag_present(argc, argv, "--dispatch-check");
  const bool dispatch_bench =
      dispatch_check ||
      entk::bench::flag_present(argc, argv, "--dispatch-bench");

  if (payload_sweep || journal_bench || dispatch_bench) {
    entk::json::Value doc;
    doc["bench"] = "dispatch";
    bool failed = false;

    if (payload_sweep) {
      std::printf("payload sweep: 3 broker hops, eager vs zero-copy\n");
      std::printf("%14s %14s %14s %10s %12s\n", "payload", "eager msg/s",
                  "zerocopy msg/s", "speedup", "zc MB/s");
      entk::json::Array rows;
      double speedup_4k = 0.0;
      for (std::size_t bytes :
           {std::size_t{64}, std::size_t{4096}, std::size_t{65536}}) {
        // Scale the message count down with payload size so every row costs
        // roughly the same wall time.
        const int messages = bytes <= 64 ? 8192 : bytes <= 4096 ? 2048 : 512;
        HopSample eager, zero;
        for (long r = 0; r < reps; ++r) {  // best-of-R, paired per rep
          const HopSample e = run_hops_once(bytes, messages, true);
          const HopSample z = run_hops_once(bytes, messages, false);
          if (e.msgs_per_s > eager.msgs_per_s) eager = e;
          if (z.msgs_per_s > zero.msgs_per_s) zero = z;
        }
        const double speedup = zero.msgs_per_s / eager.msgs_per_s;
        if (bytes == 4096) speedup_4k = speedup;
        std::printf("%14zu %14.0f %14.0f %9.2fx %12.1f\n", bytes,
                    eager.msgs_per_s, zero.msgs_per_s, speedup, zero.mb_per_s);
        entk::json::Value row;
        row["payload_bytes"] = static_cast<std::int64_t>(bytes);
        row["messages"] = messages;
        row["hops"] = 3;
        row["eager_msgs_per_s"] = eager.msgs_per_s;
        row["zero_copy_msgs_per_s"] = zero.msgs_per_s;
        row["zero_copy_mb_per_s"] = zero.mb_per_s;
        row["speedup"] = speedup;
        rows.push_back(std::move(row));
      }
      doc["hop_sweep"] = std::move(rows);

      // End-to-end A/B at 4 KiB: the same knob flipped under a full
      // AppManager run (batch=256, no-op RTS, payload echoed through the
      // done queue). Recorded as supporting evidence, not gated — the
      // end-to-end number dilutes the message path with scheduling work.
      Sample e2e_eager, e2e_zero;
      for (long r = 0; r < reps; ++r) {
        entk::mq::set_eager_serialization(true);
        const Sample e = run_once(pipelines, tasks, 256, nullptr, {}, 4096);
        entk::mq::set_eager_serialization(false);
        const Sample z = run_once(pipelines, tasks, 256, nullptr, {}, 4096);
        if (e.tasks_per_s > e2e_eager.tasks_per_s) e2e_eager = e;
        if (z.tasks_per_s > e2e_zero.tasks_per_s) e2e_zero = z;
      }
      const double e2e_speedup = e2e_zero.tasks_per_s / e2e_eager.tasks_per_s;
      std::printf("\nend-to-end 4 KiB payloads (batch=256): eager %.0f "
                  "tasks/s, zero-copy %.0f tasks/s (%.2fx)\n",
                  e2e_eager.tasks_per_s, e2e_zero.tasks_per_s, e2e_speedup);
      entk::json::Value e2e;
      e2e["payload_bytes"] = 4096;
      e2e["eager_tasks_per_s"] = e2e_eager.tasks_per_s;
      e2e["zero_copy_tasks_per_s"] = e2e_zero.tasks_per_s;
      e2e["speedup"] = e2e_speedup;
      doc["end_to_end"] = std::move(e2e);

      if (zero_copy_check && speedup_4k < 1.5) {
        std::fprintf(stderr,
                     "ZERO-COPY CHECK FAILED: expected >= 1.5x at 4 KiB, "
                     "got %.2fx\n",
                     speedup_4k);
        failed = true;
      }
    }

    if (journal_bench) {
      // Small records: the per-record policy's fixed flush syscall dominates
      // the publish, which is exactly the cost group commit amortizes.
      const int publishes = 4000;
      const std::size_t bytes = 512;
      JournalSample sync, gc;
      bool first = true;
      for (long r = 0; r < reps; ++r) {  // best (lowest p95) of R
        const JournalSample s = run_journal_once(true, publishes, bytes);
        const JournalSample g = run_journal_once(false, publishes, bytes);
        if (first || s.p95_us < sync.p95_us) sync = s;
        if (first || g.p95_us < gc.p95_us) gc = g;
        first = false;
      }
      std::printf("\ndurable publish latency, %d x %zu B records:\n",
                  publishes, bytes);
      std::printf("%18s %10s %10s %10s\n", "flush policy", "p50 (us)",
                  "p95 (us)", "p99 (us)");
      std::printf("%18s %10.1f %10.1f %10.1f\n", "per-record", sync.p50_us,
                  sync.p95_us, sync.p99_us);
      std::printf("%18s %10.1f %10.1f %10.1f\n", "group-commit", gc.p50_us,
                  gc.p95_us, gc.p99_us);
      entk::json::Value j;
      j["publishes"] = publishes;
      j["payload_bytes"] = static_cast<std::int64_t>(bytes);
      j["per_record_p50_us"] = sync.p50_us;
      j["per_record_p95_us"] = sync.p95_us;
      j["per_record_p99_us"] = sync.p99_us;
      j["group_commit_p50_us"] = gc.p50_us;
      j["group_commit_p95_us"] = gc.p95_us;
      j["group_commit_p99_us"] = gc.p99_us;
      j["p95_speedup"] = sync.p95_us / gc.p95_us;
      doc["journal"] = std::move(j);

      if (journal_check && !(gc.p95_us < sync.p95_us)) {
        std::fprintf(stderr,
                     "JOURNAL CHECK FAILED: group-commit p95 %.1f us is not "
                     "better than per-record %.1f us\n",
                     gc.p95_us, sync.p95_us);
        failed = true;
      }
    }

    if (dispatch_bench) {
      // The million-tasks/s gate: raw broker message cycles at 64 B, one
      // shard (the historical broker) vs four (the sharded hot path). On a
      // single hardware thread one worker thread is the fastest plan; give
      // the sharded row one worker per 2 shards up to the core count so a
      // multi-core box also exercises cross-shard parallelism.
      const int messages =
          static_cast<int>(entk::bench::flag_int(argc, argv,
                                                 "--dispatch-messages",
                                                 1 << 20));
      const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
      std::printf("\nraw dispatch, %d x 64 B messages "
                  "(publish/get/ack batches of 256, 8 queues):\n",
                  messages);
      std::printf("%8s %8s %10s %14s\n", "shards", "threads", "wall (s)",
                  "msgs/s");
      entk::json::Array rows;
      double sharded_rate = 0.0;
      for (std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
        const unsigned threads = std::min<unsigned>(
            cores, shards > 1 ? static_cast<unsigned>(shards / 2) : 1u);
        DispatchSample best;
        for (long r = 0; r < reps; ++r) {
          const DispatchSample s =
              run_dispatch_once(shards, messages, threads);
          if (s.msgs_per_s > best.msgs_per_s) best = s;
        }
        if (shards > 1) sharded_rate = best.msgs_per_s;
        std::printf("%8zu %8u %10.3f %14.0f\n", best.shards, threads,
                    best.wall_s, best.msgs_per_s);
        entk::json::Value row;
        row["shards"] = static_cast<std::int64_t>(best.shards);
        row["threads"] = static_cast<std::int64_t>(threads);
        row["payload_bytes"] = 64;
        row["messages"] = messages;
        row["wall_s"] = best.wall_s;
        row["msgs_per_s"] = best.msgs_per_s;
        rows.push_back(std::move(row));
      }
      doc["dispatch"] = std::move(rows);

      if (dispatch_check && sharded_rate < 1e6) {
        std::fprintf(stderr,
                     "DISPATCH CHECK FAILED: expected >= 1000000 msgs/s with "
                     "shards=4, got %.0f\n",
                     sharded_rate);
        failed = true;
      }
    }

    std::ofstream out(json_out);
    out << doc.dump() << "\n";
    std::printf("\nresults written to %s\n", json_out.c_str());
    return failed ? 1 : 0;
  }

  if (entk::bench::flag_present(argc, argv, "--obs-check")) {
    // Acceptance gate for the obs subsystem: with live metrics recording on
    // every broker/wfp/emgr hot path, batch=256 dispatch throughput must
    // stay within 5% of the uninstrumented run. Paired design: each rep runs
    // off then on back to back, so machine-load drift over the sweep hits
    // both sides of a pair equally; the median per-pair ratio discards
    // outlier pairs entirely. Exports (file I/O) happen in one untimed run
    // so the gate measures in-run overhead only.
    std::vector<double> ratios;
    Sample off_best, on_best;
    for (long r = 0; r < reps; ++r) {
      const Sample off = run_once(pipelines, tasks, 256);
      const Sample on =
          run_once(pipelines, tasks, 256, nullptr, ObsOptions{true, "", ""});
      ratios.push_back(on.tasks_per_s / off.tasks_per_s);
      if (off.tasks_per_s > off_best.tasks_per_s) off_best = off;
      if (on.tasks_per_s > on_best.tasks_per_s) on_best = on;
    }
    if (!export_obs.trace_out.empty() || !export_obs.metrics_out.empty()) {
      run_once(pipelines, tasks, 256, nullptr, export_obs);
    }
    std::sort(ratios.begin(), ratios.end());
    const double ratio = ratios[ratios.size() / 2];
    std::printf("%12s %10s %14s %14s\n", "batch_size", "wall (s)", "tasks/s",
                "us/task");
    std::printf("%12s %10.3f %14.0f %14.1f\n", "256 (off)", off_best.wall_s,
                off_best.tasks_per_s, off_best.us_per_task);
    std::printf("%12s %10.3f %14.0f %14.1f\n", "256 (obs)", on_best.wall_s,
                on_best.tasks_per_s, on_best.us_per_task);
    std::printf("\nobs-on vs obs-off throughput (median of %zu pairs): %.3fx\n",
                ratios.size(), ratio);
    if (ratio < 0.95) {
      std::fprintf(stderr,
                   "OBS CHECK FAILED: metrics+tracing cost %.1f%% throughput "
                   "(budget: 5%%)\n",
                   100.0 * (1.0 - ratio));
      return 1;
    }
    return 0;
  }

  std::vector<Sample> samples;
  std::printf("%12s %10s %14s %14s\n", "batch_size", "wall (s)", "tasks/s",
              "us/task");
  for (std::size_t batch : {std::size_t{1}, std::size_t{16},
                            std::size_t{256}}) {
    const std::string csv =
        profile_prefix.empty()
            ? ""
            : profile_prefix + "_b" + std::to_string(batch) + ".csv";
    // Best-of-R: dispatch is latency-bound, so the fastest rep is the one
    // least disturbed by scheduler noise on a shared machine.
    Sample s = run_once(pipelines, tasks, batch,
                        csv.empty() ? nullptr : csv.c_str(),
                        batch == 256 ? export_obs : ObsOptions{});
    for (long r = 1; r < reps; ++r) {
      const Sample again = run_once(pipelines, tasks, batch);
      if (again.tasks_per_s > s.tasks_per_s) s = again;
    }
    std::printf("%12zu %10.3f %14.0f %14.1f\n", s.batch, s.wall_s,
                s.tasks_per_s, s.us_per_task);
    samples.push_back(s);
  }

  const double speedup = samples.back().tasks_per_s / samples.front().tasks_per_s;
  std::printf("\nbatch=256 vs batch=1: %.2fx tasks/s\n", speedup);
  if (check && speedup < 3.0) {
    std::fprintf(stderr, "CHECK FAILED: expected >= 3x, got %.2fx\n", speedup);
    return 1;
  }
  return 0;
}
