// task_throughput: end-to-end dispatch throughput of the batched pipeline.
//
// Pushes M pipelines x N tasks through AppManager with a no-op RTS that
// completes every unit synchronously inside submit(), so the measured time
// is pure EnTK overhead: Enqueue -> Pending -> Emgr -> (instant RTS) ->
// Done -> Dequeue plus all state synchronization. Sweeps the
// task_batch_size knob to show what bulk broker messages, vectored state
// syncs and completion coalescing buy over the strictly per-task flow.
//
// Flags: --pipelines M (default 4), --tasks N per pipeline (default 256),
//        --reps R best-of-R runs per batch size (default 3),
//        --check (exit nonzero unless batch=256 gives >= 3x batch=1),
//        --profile PREFIX (dump one profiler CSV per batch size),
//        --trace-out PATH / --metrics-out PATH (observability exports of
//        the first batch=256 run: Chrome trace JSON / metrics JSONL),
//        --obs-check (batch=256 only: best-of-R with live metrics off vs
//        on; exit nonzero when the instrumented run loses >= 5% tasks/s).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/util.hpp"
#include "src/rts/rts.hpp"

namespace {

using entk::rts::Rts;
using entk::rts::RtsStats;
using entk::rts::TaskUnit;
using entk::rts::UnitOutcome;
using entk::rts::UnitResult;

// Completes every unit inside submit() on the caller's thread: zero
// execution cost, zero latency, so EnTK's own dispatch path is the only
// thing on the clock.
class NoopRts final : public Rts {
 public:
  void initialize() override {}

  void set_completion_callback(
      std::function<void(const UnitResult&)> callback) override {
    callback_ = std::move(callback);
  }

  void submit(std::vector<TaskUnit> units) override {
    stats_.units_submitted += units.size();
    for (const TaskUnit& unit : units) {
      UnitResult result;
      result.uid = unit.uid;
      result.name = unit.name;
      result.outcome = UnitOutcome::Done;
      result.exit_code = 0;
      callback_(result);
      ++stats_.units_completed;
    }
  }

  bool is_healthy() const override { return true; }
  void terminate() override {}
  void kill() override {}
  RtsStats stats() const override { return stats_; }
  std::vector<std::string> in_flight_units() const override { return {}; }

 private:
  std::function<void(const UnitResult&)> callback_;
  RtsStats stats_;
};

struct Sample {
  std::size_t batch = 0;
  double wall_s = 0.0;
  double tasks_per_s = 0.0;
  double us_per_task = 0.0;
};

struct ObsOptions {
  bool metrics = false;
  std::string trace_out;
  std::string metrics_out;
};

Sample run_once(int pipelines, int tasks, std::size_t batch,
                const char* profile_csv = nullptr,
                const ObsOptions& obs = {}) {
  entk::bench::EnsembleSpec spec;
  spec.pipelines = pipelines;
  spec.stages = 1;
  spec.tasks = tasks;
  spec.duration_s = 0.0;

  entk::AppManagerConfig config;
  config.resource.resource = "local";
  config.resource.cpus = 16;
  config.resource.walltime_s = 3600;
  config.task_batch_size = batch;
  config.obs.metrics = obs.metrics;
  config.obs.trace_out = obs.trace_out;
  config.obs.metrics_out = obs.metrics_out;
  config.rts_factory = [] { return std::make_shared<NoopRts>(); };

  entk::AppManager appman(std::move(config));
  appman.add_pipelines(entk::bench::make_ensemble(spec));

  const auto t0 = std::chrono::steady_clock::now();
  appman.run();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (profile_csv != nullptr) appman.profiler()->dump_csv(profile_csv);
  const std::size_t total = static_cast<std::size_t>(pipelines) * tasks;
  if (appman.tasks_done() != total) {
    std::fprintf(stderr, "FATAL: batch=%zu resolved %zu of %zu tasks\n",
                 batch, appman.tasks_done(), total);
    std::exit(2);
  }
  Sample s;
  s.batch = batch;
  s.wall_s = wall_s;
  s.tasks_per_s = static_cast<double>(total) / wall_s;
  s.us_per_task = 1e6 * wall_s / static_cast<double>(total);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const int pipelines =
      static_cast<int>(entk::bench::flag_int(argc, argv, "--pipelines", 4));
  const int tasks =
      static_cast<int>(entk::bench::flag_int(argc, argv, "--tasks", 256));
  const long reps = entk::bench::flag_int(argc, argv, "--reps", 3);
  const bool check = entk::bench::flag_present(argc, argv, "--check");

  std::printf("task_throughput: %d pipeline(s) x %d task(s), no-op RTS\n\n",
              pipelines, tasks);
  std::printf("%12s %10s %14s %14s\n", "batch_size", "wall (s)", "tasks/s",
              "us/task");

  // --profile PREFIX: dump one CSV event trace per batch size.
  std::string profile_prefix;
  ObsOptions export_obs;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--profile") profile_prefix = argv[i + 1];
    if (std::string(argv[i]) == "--trace-out") export_obs.trace_out = argv[i + 1];
    if (std::string(argv[i]) == "--metrics-out")
      export_obs.metrics_out = argv[i + 1];
  }
  export_obs.metrics = !export_obs.trace_out.empty() ||
                       !export_obs.metrics_out.empty();

  if (entk::bench::flag_present(argc, argv, "--obs-check")) {
    // Acceptance gate for the obs subsystem: with live metrics recording on
    // every broker/wfp/emgr hot path, batch=256 dispatch throughput must
    // stay within 5% of the uninstrumented run. Paired design: each rep runs
    // off then on back to back, so machine-load drift over the sweep hits
    // both sides of a pair equally; the median per-pair ratio discards
    // outlier pairs entirely. Exports (file I/O) happen in one untimed run
    // so the gate measures in-run overhead only.
    std::vector<double> ratios;
    Sample off_best, on_best;
    for (long r = 0; r < reps; ++r) {
      const Sample off = run_once(pipelines, tasks, 256);
      const Sample on =
          run_once(pipelines, tasks, 256, nullptr, ObsOptions{true, "", ""});
      ratios.push_back(on.tasks_per_s / off.tasks_per_s);
      if (off.tasks_per_s > off_best.tasks_per_s) off_best = off;
      if (on.tasks_per_s > on_best.tasks_per_s) on_best = on;
    }
    if (!export_obs.trace_out.empty() || !export_obs.metrics_out.empty()) {
      run_once(pipelines, tasks, 256, nullptr, export_obs);
    }
    std::sort(ratios.begin(), ratios.end());
    const double ratio = ratios[ratios.size() / 2];
    std::printf("%12s %10.3f %14.0f %14.1f\n", "256 (off)", off_best.wall_s,
                off_best.tasks_per_s, off_best.us_per_task);
    std::printf("%12s %10.3f %14.0f %14.1f\n", "256 (obs)", on_best.wall_s,
                on_best.tasks_per_s, on_best.us_per_task);
    std::printf("\nobs-on vs obs-off throughput (median of %zu pairs): %.3fx\n",
                ratios.size(), ratio);
    if (ratio < 0.95) {
      std::fprintf(stderr,
                   "OBS CHECK FAILED: metrics+tracing cost %.1f%% throughput "
                   "(budget: 5%%)\n",
                   100.0 * (1.0 - ratio));
      return 1;
    }
    return 0;
  }

  std::vector<Sample> samples;
  for (std::size_t batch : {std::size_t{1}, std::size_t{16},
                            std::size_t{256}}) {
    const std::string csv =
        profile_prefix.empty()
            ? ""
            : profile_prefix + "_b" + std::to_string(batch) + ".csv";
    // Best-of-R: dispatch is latency-bound, so the fastest rep is the one
    // least disturbed by scheduler noise on a shared machine.
    Sample s = run_once(pipelines, tasks, batch,
                        csv.empty() ? nullptr : csv.c_str(),
                        batch == 256 ? export_obs : ObsOptions{});
    for (long r = 1; r < reps; ++r) {
      const Sample again = run_once(pipelines, tasks, batch);
      if (again.tasks_per_s > s.tasks_per_s) s = again;
    }
    std::printf("%12zu %10.3f %14.0f %14.1f\n", s.batch, s.wall_s,
                s.tasks_per_s, s.us_per_task);
    samples.push_back(s);
  }

  const double speedup = samples.back().tasks_per_s / samples.front().tasks_per_s;
  std::printf("\nbatch=256 vs batch=1: %.2fx tasks/s\n", speedup);
  if (check && speedup < 3.0) {
    std::fprintf(stderr, "CHECK FAILED: expected >= 3x, got %.2fx\n", speedup);
    return 1;
  }
  return 0;
}
